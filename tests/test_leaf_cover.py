"""Tests for leaf cover, obligations and answerability (Section IV-A)."""

import pytest

from repro.core import (
    DELTA,
    View,
    coverage_units,
    covers_query,
    leaf_cover_labels,
    obligations_of,
    view_coverage,
)
from repro.core.leaf_cover import coverage_for_anchor
from repro.matching import feasible_anchors
from repro.xpath import parse_xpath


class TestObligations:
    def test_leaf_and_delta(self):
        query = parse_xpath("s[f//i][t]/p")
        labels = {str(o) for o in obligations_of(query)}
        assert labels == {DELTA, "i", "t", "p"}

    def test_attribute_obligations(self):
        query = parse_xpath("//a[@id]/b")
        kinds = {(o.kind, o.label) for o in obligations_of(query)}
        assert ("attrs", "a") in kinds
        assert ("leaf", "b") in kinds

    def test_internal_nodes_not_leaves(self):
        query = parse_xpath("/a/b/c")
        leaf_labels = [o.label for o in obligations_of(query) if o.kind == "leaf"]
        assert leaf_labels == ["c"]


class TestPaperExamples:
    """Example 4.3 / Equation 1 analogues."""

    def test_lc_v1(self):
        query = parse_xpath("s[f//i][t]/p")
        assert leaf_cover_labels(View.from_xpath("V1", "s[t]/p"), query) == {
            DELTA, "t", "p",
        }

    def test_lc_v4(self):
        query = parse_xpath("s[f//i][t]/p")
        assert leaf_cover_labels(View.from_xpath("V4", "s[p]/f"), query) == {
            "i", "p",
        }

    def test_answerability_pair(self):
        query = parse_xpath("s[f//i][t]/p")
        v1 = View.from_xpath("V1", "s[t]/p")
        v4 = View.from_xpath("V4", "s[p]/f")
        units = coverage_units(v1, query) + coverage_units(v4, query)
        assert covers_query(units, query)

    def test_single_view_insufficient(self):
        query = parse_xpath("s[f//i][t]/p")
        v1 = View.from_xpath("V1", "s[t]/p")
        assert not covers_query(coverage_units(v1, query), query)

    def test_example_4_2_shared_parent_is_not_enough(self):
        """The (V1,V2) ⊭ Q1 flavour: a view lacking the [c] predicate
        cannot cover c's obligation."""
        query = parse_xpath("//a[b[c]/d]/e[f]")
        v2 = View.from_xpath("V2", "//a[b/d]/e")  # no [c]
        covered = leaf_cover_labels(v2, query)
        assert "c" not in covered

    def test_equivalent_view_answers_alone(self):
        query = parse_xpath("//a[b]/c")
        view = View.from_xpath("V", "//a[b]/c")
        assert covers_query(coverage_units(view, query), query)


class TestDeltaCondition:
    def test_anchor_at_answer(self):
        query = parse_xpath("//a/b")
        view = View.from_xpath("V", "//a/b")
        units = coverage_units(view, query)
        assert any(u.provides_delta for u in units)

    def test_anchor_above_answer(self):
        query = parse_xpath("//a/b/c")
        view = View.from_xpath("V", "//a/b")  # returns b, ancestor of c
        units = coverage_units(view, query)
        assert any(u.provides_delta for u in units)
        # everything under b is fragment-checkable
        assert covers_query(units, query)

    def test_anchor_beside_answer_no_delta(self):
        query = parse_xpath("//a[f]/p")
        view = View.from_xpath("V", "//a[p]/f")  # returns f, not ancestor of p
        units = coverage_units(view, query)
        assert not any(u.provides_delta for u in units)


class TestPinningSoundness:
    def test_descendant_spine_blocks_implication(self):
        """V = //a[b]//d must not imply [b] for //a[b]/a/d: the b-host
        is not pinned to the fragment root's chain."""
        query = parse_xpath("//a[b]/a/d")
        view = View.from_xpath("V", "//a[b]//d")
        assert "b" not in leaf_cover_labels(view, query)

    def test_child_spine_allows_implication(self):
        query = parse_xpath("//a[b]/d")
        view = View.from_xpath("V", "//a[b]/d")
        assert "b" in leaf_cover_labels(view, query)

    def test_whole_branch_implication_required(self):
        """Partial branch matches must not count (shared intermediate)."""
        query = parse_xpath("//a[b[c][d]]/e")
        vy = View.from_xpath("VY", "//a[b[c]]/e")
        vx = View.from_xpath("VX", "//a[b[d]]/e")
        assert "c" not in leaf_cover_labels(vy, query)
        assert "d" not in leaf_cover_labels(vx, query)
        units = coverage_units(vy, query) + coverage_units(vx, query)
        assert not covers_query(units, query)

    def test_separate_branches_compose(self):
        query = parse_xpath("//a[b[c]][b[d]]/e")
        vy = View.from_xpath("VY", "//a[b[c]]/e")
        vx = View.from_xpath("VX", "//a[b[d]]/e")
        units = coverage_units(vy, query) + coverage_units(vx, query)
        assert covers_query(units, query)

    def test_wildcard_view_branch_does_not_imply_label(self):
        query = parse_xpath("//a[b]/c")
        view = View.from_xpath("V", "//a[*]/c")
        assert "b" not in leaf_cover_labels(view, query)

    def test_more_specific_view_cannot_answer(self):
        """//a[*]/c is NOT contained in //a[b]/c, so the view has no
        coverage at all (no homomorphism exists)."""
        query = parse_xpath("//a[*]/c")
        view = View.from_xpath("V", "//a[b]/c")
        assert coverage_units(view, query) == []


class TestAttributeCoverage:
    def test_exact_constraint_implied(self):
        query = parse_xpath("//a[@id='1']/b")
        view = View.from_xpath("V", "//a[@id='1']/b")
        assert covers_query(coverage_units(view, query), query)

    def test_different_constraint_not_implied(self):
        query = parse_xpath("//a[@id='1']/b")
        view = View.from_xpath("V", "//a[@id='2']/b")
        assert coverage_units(view, query) == []  # no homomorphism at all

    def test_constraint_under_anchor_checkable(self):
        query = parse_xpath("//a/b[@id='1']")
        view = View.from_xpath("V", "//a/b")
        assert covers_query(coverage_units(view, query), query)

    def test_constraint_above_unpinned_anchor_not_covered(self):
        # The view is strictly more general (no [d]), so the
        # mutual-containment shortcut does not apply; the anchor b is
        # reached via //, a is not pinned, @id not coverable.
        query = parse_xpath("//a[@id='1']//b[d]")
        view = View.from_xpath("V", "//a[@id='1']//b")
        labels = {str(o) for u in coverage_units(view, query) for o in u.covered}
        assert "@a" not in labels
        assert "d" in labels  # under the anchor: fragment-checkable

    def test_identical_view_covers_everything(self):
        """Mutual containment: a view always answers itself, even with
        predicates hanging off unpinned spine nodes."""
        query = parse_xpath("//a[@id='1']//b")
        view = View.from_xpath("V", "//a[@id='1']//b")
        assert covers_query(coverage_units(view, query), query)

    def test_equivalent_spelling_covers_everything(self):
        query = parse_xpath("//n/*[c]//q")
        view = View.from_xpath("V", "//n/*[c]//q")
        assert covers_query(coverage_units(view, query), query)


class TestCoverageUnits:
    def test_one_unit_per_anchor(self):
        query = parse_xpath("//a/a/b")
        view = View.from_xpath("V", "//a")
        units = coverage_units(view, query)
        assert len(units) == 2
        anchors = {u.anchor for u in units}
        assert len(anchors) == 2

    def test_units_empty_without_homomorphism(self):
        query = parse_xpath("//x/y")
        view = View.from_xpath("V", "//a/b")
        assert coverage_units(view, query) == []

    def test_view_coverage_unions_units(self):
        query = parse_xpath("//a[b]/a/c")
        view = View.from_xpath("V", "//a")
        union = view_coverage(view, query)
        per_unit = [u.covered for u in coverage_units(view, query)]
        assert union == frozenset().union(*per_unit)

    def test_coverage_for_anchor_direct(self):
        query = parse_xpath("s[f//i][t]/p")
        view = View.from_xpath("V4", "s[p]/f")
        anchor = feasible_anchors(view.pattern, query)[0]
        unit = coverage_for_anchor(view, query, anchor)
        assert {str(o) for o in unit.covered} == {"i", "p"}
        assert not unit.provides_delta
