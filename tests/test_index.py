"""Tests for the BN / BF base-data indexes."""

import random

import pytest

from repro.matching import evaluate
from repro.storage import FullPathIndex, NodeIndex, match_path_steps
from repro.xmltree import build_tree
from repro.xpath import Axis, parse_xpath

from conftest import random_pattern, random_tree


class TestMatchPathSteps:
    def _steps(self, expression):
        pattern = parse_xpath(expression)
        return [(n.axis, n.label) for n in pattern.ret.root_path()]

    @pytest.mark.parametrize(
        "expression,path,expected",
        [
            ("/a/b", ("a", "b"), True),
            ("/a/b", ("a", "b", "c"), False),  # whole path must be consumed
            ("/a//c", ("a", "b", "c"), True),
            ("/a//c", ("a", "c"), True),
            ("/a//c", ("c",), False),
            ("//c", ("a", "b", "c"), True),
            ("/a/*/c", ("a", "b", "c"), True),
            ("/a/*/c", ("a", "c"), False),
            ("//*", ("anything",), True),
            ("/a//b//b", ("a", "b", "b"), True),
            ("/a//b//b", ("a", "b"), False),
        ],
    )
    def test_cases(self, expression, path, expected):
        assert match_path_steps(self._steps(expression), path) is expected


@pytest.fixture
def sample_tree():
    return build_tree(
        ("r", [
            ("a", [("b", ["c"]), "d"]),
            ("a", ["d", ("b", [])]),
            ("x", [("a", [("b", ["c"])])]),
        ])
    )


class TestNodeIndex:
    def test_label_lists(self, sample_tree):
        index = NodeIndex(sample_tree)
        assert len(index.nodes_with_label("a")) == 3
        assert index.nodes_with_label("zzz") == []

    def test_universe_for_concrete_labels(self, sample_tree):
        index = NodeIndex(sample_tree)
        pattern = parse_xpath("//a/b")
        universe = index.universe_for(pattern)
        assert {node.label for node in universe} == {"a", "b"}

    def test_universe_for_wildcard_is_everything(self, sample_tree):
        index = NodeIndex(sample_tree)
        pattern = parse_xpath("//a/*")
        assert len(index.universe_for(pattern)) == sample_tree.size()

    def test_evaluate_matches_truth(self, sample_tree):
        index = NodeIndex(sample_tree)
        for expr in ["//a/b/c", "/r/a/d", "//b", "//x//c", "//a[b]/d"]:
            pattern = parse_xpath(expr)
            assert index.evaluate(pattern) == evaluate(pattern, sample_tree)

    def test_stored_bytes_positive(self, sample_tree):
        assert NodeIndex(sample_tree).stored_bytes > 0


class TestFullPathIndex:
    def test_distinct_paths(self, sample_tree):
        index = FullPathIndex(sample_tree)
        assert ("r", "a", "b", "c") in index.distinct_paths()
        assert len(index.nodes_on_path(("r", "a"))) == 2

    def test_candidates_for_node(self, sample_tree):
        index = FullPathIndex(sample_tree)
        pattern = parse_xpath("/r/a/b")
        candidates = index.candidates_for_node(pattern.ret)
        assert all(node.label == "b" for node in candidates)
        assert len(candidates) == 2  # excludes the b under x/a

    def test_evaluate_matches_truth(self, sample_tree):
        index = FullPathIndex(sample_tree)
        for expr in ["//a/b/c", "/r/a/d", "//b", "//x//c", "//a[b]/d", "//*[b]"]:
            pattern = parse_xpath(expr)
            assert index.evaluate(pattern) == evaluate(pattern, sample_tree)

    def test_bf_index_larger_than_bn(self, sample_tree):
        bn = NodeIndex(sample_tree)
        bf = FullPathIndex(sample_tree)
        assert bf.stored_bytes >= bn.stored_bytes


@pytest.mark.parametrize("seed", range(15))
def test_indexes_agree_with_truth_on_random_inputs(seed):
    rng = random.Random(seed)
    tree = random_tree(rng, max_nodes=35)
    bn, bf = NodeIndex(tree), FullPathIndex(tree)
    for _ in range(5):
        pattern = random_pattern(rng, max_nodes=5)
        truth = evaluate(pattern, tree)
        assert bn.evaluate(pattern) == truth
        assert bf.evaluate(pattern) == truth
