"""XPath-fragment semantics conformance suite.

Table-driven cases over small documents; every case states the exact
answer set (as label/position pairs), and each is *also* cross-checked
against the brute-force embedding enumerator and the TJFast evaluator,
so the three implementations must agree case by case.
"""

import pytest

from repro.matching import evaluate, tjfast_evaluate
from repro.xmltree import build_tree, encode_tree
from repro.xpath import parse_xpath

from conftest import brute_force_answers

# One shared document exercising depth, repetition and recursion:
#
#   r
#   ├── a₁ ── b₁ ── c₁
#   │      └─ d₁
#   ├── a₂ ── a₃ ── b₂ ── d₂
#   │      └─ c₂
#   └── b₃ ── a₄ ── c₃
DOC = ("r", [
    ("a", [("b", ["c", "d"])]),
    ("a", [("a", [("b", ["d"])]), "c"]),
    ("b", [("a", ["c"])]),
])

#: expression → list of (label, extended-Dewey) answers.  Node key:
#: a1=0.0, b1=0.0.0, c1=0.0.0.0, d1=0.0.0.1; a2=0.2, a3=0.2.1,
#: b2=0.2.1.0, d2=0.2.1.0.1, c2=0.2.2; b3=0.3, a4=0.3.2, c3=0.3.2.2.
CASES = {
    # axes
    "/r": ["r:0"],
    "//r": ["r:0"],
    "/r/a": ["a:0.0", "a:0.2"],
    "//a": ["a:0.0", "a:0.2", "a:0.2.1", "a:0.3.2"],
    "/r//a": ["a:0.0", "a:0.2", "a:0.2.1", "a:0.3.2"],
    "//a/a": ["a:0.2.1"],
    "//a//a": ["a:0.2.1"],
    "/a": [],
    # wildcards
    "/r/*": ["a:0.0", "a:0.2", "b:0.3"],
    "//a/*": ["b:0.0.0", "a:0.2.1", "c:0.2.2", "b:0.2.1.0", "c:0.3.2.2"],
    "/*/*/c": ["c:0.2.2"],
    "//*[c]": ["b:0.0.0", "a:0.2", "a:0.3.2"],
    # predicates
    "//a[b]": ["a:0.0", "a:0.2.1"],
    "//a[b][c]": [],
    "//a[b/c]": ["a:0.0"],
    "//a[b/d]": ["a:0.0", "a:0.2.1"],
    "//a[.//d]": ["a:0.0", "a:0.2", "a:0.2.1"],
    "//a[.//d][c]": ["a:0.2"],
    "//r[a]/b": ["b:0.3"],
    # answers below predicated nodes
    "//a[c]/b/d": [],  # a[c] = a2, a4; neither has a b child
    "//a[.//c]//d": ["d:0.0.0.1", "d:0.2.1.0.1"],
    # deep chains
    "//a/b/c": ["c:0.0.0.0"],
    "//b//c": ["c:0.0.0.0", "c:0.3.2.2"],
    "//b/*": ["c:0.0.0.0", "d:0.0.0.1", "d:0.2.1.0.1", "a:0.3.2"],
    # mixed
    "/r/b/a/c": ["c:0.3.2.2"],
    "/r/*[a]": ["a:0.2", "b:0.3"],
    "//*[a/b]/c": ["c:0.2.2"],
}


@pytest.fixture(scope="module")
def doc():
    return encode_tree(build_tree(DOC))


def _answers(doc, expression):
    pattern = parse_xpath(expression)
    return {
        f"{node.label}:{'.'.join(map(str, node.dewey))}"
        for node in evaluate(pattern, doc.tree)
    }


@pytest.mark.parametrize("expression,expected", sorted(CASES.items()))
def test_expected_answers(doc, expression, expected):
    assert _answers(doc, expression) == set(expected), expression


@pytest.mark.parametrize("expression", sorted(CASES))
def test_three_evaluators_agree(doc, expression):
    pattern = parse_xpath(expression)
    reference = brute_force_answers(pattern, doc.tree)
    assert evaluate(pattern, doc.tree) == reference
    assert tjfast_evaluate(pattern, doc) == {
        node.dewey for node in reference
    }


class TestAnswerNodePlacement:
    """The same structure with different answer nodes."""

    def test_answer_at_root_of_pattern(self, doc):
        assert _answers(doc, "//a[b/c]") == {"a:0.0"}

    def test_answer_mid_pattern(self, doc):
        # //a/b with b the answer vs //a[b] with a the answer
        assert _answers(doc, "//a/b") == {"b:0.0.0", "b:0.2.1.0"}

    def test_answer_under_predicate_host(self, doc):
        assert _answers(doc, "//a[c]/a/b") == {"b:0.2.1.0"}


class TestBooleanOnlyDistinctions:
    """Patterns equivalent as booleans but different as queries."""

    def test_same_boolean_different_answers(self, doc):
        from repro.matching import evaluate_boolean

        first = parse_xpath("//a[b]")
        second = parse_xpath("//a/b")
        assert evaluate_boolean(first, doc.tree) == evaluate_boolean(
            second, doc.tree
        )
        assert _answers(doc, "//a[b]") != _answers(doc, "//a/b")
