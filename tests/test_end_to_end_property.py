"""Property-based end-to-end tests: the library's central invariants.

1. **Rewriting correctness**: whenever the system deems a query
   answerable from views, the rewritten answer equals direct evaluation
   on the base document — for every strategy.
2. **Baseline correctness**: BN and BF always equal direct evaluation.
3. **Filter soundness**: VFILTER never drops a view that has a
   homomorphism to the query.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import MaterializedViewSystem, encode_tree
from repro.errors import ViewNotAnswerableError
from repro.matching import has_homomorphism

from conftest import random_pattern, random_tree


def _build_system(seed: int, view_count: int = 6):
    rng = random.Random(seed)
    tree = random_tree(rng, max_nodes=30, max_depth=5)
    doc = encode_tree(tree)
    system = MaterializedViewSystem(doc)
    for index in range(view_count):
        system.register_view(f"v{index}", random_pattern(rng, max_nodes=4))
    query = random_pattern(rng, max_nodes=5)
    return system, query


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 10**9))
def test_rewriting_equals_direct_evaluation(seed):
    system, query = _build_system(seed)
    truth = system.direct_codes(query)
    for strategy in ("HV", "MV", "MN", "CB"):
        try:
            outcome = system.answer(query, strategy)
        except ViewNotAnswerableError:
            continue
        assert outcome.codes == truth, (
            strategy,
            query.to_xpath(mark_answer=True),
            [v.to_xpath() for v in system.materialized_views()],
        )


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_baselines_equal_direct_evaluation(seed):
    system, query = _build_system(seed, view_count=0)
    truth = system.direct_codes(query)
    assert system.answer_bn(query).codes == truth
    assert system.answer_bf(query).codes == truth


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_vfilter_soundness(seed):
    system, query = _build_system(seed, view_count=8)
    candidates = set(system.vfilter.filter(query).candidates)
    for view in system.materialized_views():
        if has_homomorphism(view.pattern, query):
            assert view.view_id in candidates


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_contained_rewriting_is_contained(seed):
    """answer_contained always returns a subset of the true answers,
    and the full set when it reports exactness."""
    system, query = _build_system(seed)
    truth = set(system.direct_codes(query))
    result = system.answer_contained(query)
    assert set(result.codes) <= truth
    if result.is_exact:
        assert set(result.codes) == truth


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10**9))
def test_strategies_agree_on_answerability_success(seed):
    """If MN answers, MV answers too (VFILTER keeps every usable view),
    and both produce the same answer set."""
    system, query = _build_system(seed)
    try:
        mn = system.answer(query, "MN")
    except ViewNotAnswerableError:
        return
    mv = system.answer(query, "MV")
    assert mv.codes == mn.codes
