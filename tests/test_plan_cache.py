"""Plan cache, coverage memo and parallel registration.

The invariants under test:

1. Warm (cached-plan) answers are identical to cold answers, for every
   strategy, including negative (unanswerable) outcomes.
2. ``register_view`` and maintenance inserts/deletes invalidate the
   plan cache — a warm system never serves answers a cold system built
   at the same state would not produce (property test interleaving all
   three operations).
3. The coverage memo serves repeated (view, query) pairs without
   recomputation and across strategies.
4. Parallel bulk registration produces a byte-identical fragment store
   to serial registration.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import MaterializedViewSystem, ViewNotAnswerableError, encode_tree, parse_xml
from repro.delta.maintenance import DocumentEditor
from repro.core.plancache import PlanCache, PlanEntry
from repro.xmltree.tree import XMLNode
from repro.xpath.parser import parse_xpath

from conftest import random_pattern, random_tree

BOOK_XML = """
<b>
  <t/> <a/>
  <s> <t/> <p/> <f><i/></f> </s>
  <s> <t/> <p/> <p/>
    <s> <t/> <p/> <f><i/></f> </s>
    <s> <t/> <p/> </s>
  </s>
</b>
"""


def _book_system(**kwargs) -> MaterializedViewSystem:
    document = encode_tree(parse_xml(BOOK_XML))
    system = MaterializedViewSystem(document, **kwargs)
    system.register_view("V1", "s[t]/p")
    system.register_view("V4", "s[p]/f")
    return system


# ----------------------------------------------------------------------
# PlanCache unit behavior
# ----------------------------------------------------------------------
def test_plan_cache_lru_eviction():
    cache = PlanCache(maxsize=2)
    pattern = parse_xpath("//a")
    for key in ("k1", "k2", "k3"):
        cache.put(key, "HV", PlanEntry(pattern))
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.get("k1", "HV") is None  # evicted (oldest)
    assert cache.get("k3", "HV") is not None


def test_plan_cache_disabled():
    cache = PlanCache(maxsize=0)
    cache.put("k", "HV", PlanEntry(parse_xpath("//a")))
    assert len(cache) == 0 and not cache.enabled


def test_plan_cache_clear_counts_invalidations():
    cache = PlanCache()
    cache.clear()  # empty clear is not an invalidation
    assert cache.stats.invalidations == 0
    cache.put("k", "HV", PlanEntry(parse_xpath("//a")))
    cache.clear()
    assert cache.stats.invalidations == 1 and len(cache) == 0


# ----------------------------------------------------------------------
# Warm answers and statistics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["HV", "MV", "MN", "CB"])
def test_warm_answer_equals_cold(strategy):
    system = _book_system()
    query = "s[f//i][t]/p"
    cold = system.answer(query, strategy)
    warm = system.answer(query, strategy)
    assert not cold.plan_cache_hit and warm.plan_cache_hit
    assert warm.codes == cold.codes == system.direct_codes(query)
    assert warm.view_ids == cold.view_ids
    stats = system.stats()
    assert stats["plan_cache"]["hits"] >= 1


def test_warm_codes_are_independent_copies():
    system = _book_system()
    first = system.answer("s[t]/p")
    first.codes.append((9, 9, 9))  # caller mutates its outcome
    second = system.answer("s[t]/p")
    assert (9, 9, 9) not in second.codes


def test_equivalent_spellings_share_a_plan():
    system = _book_system()
    system.answer("s[t]/p")
    outcome = system.answer("//s[t]/p")  # same canonical pattern
    assert outcome.plan_cache_hit


def test_negative_outcome_is_cached_and_replayed():
    system = _book_system()
    with pytest.raises(ViewNotAnswerableError) as cold:
        system.answer("//a")
    with pytest.raises(ViewNotAnswerableError) as warm:
        system.answer("//a")
    assert str(warm.value) == str(cold.value)
    assert warm.value.uncovered == cold.value.uncovered
    assert system.stats()["plan_cache"]["hits"] == 1


def test_coverage_memo_shared_across_strategies():
    system = _book_system()
    query = "s[f//i][t]/p"
    system.answer(query, "MN")
    computed = system._memo.computed
    system.answer(query, "MV")  # same (view, query) pairs
    assert system._memo.computed == computed
    assert system._memo.served > 0


def test_plan_cache_can_be_disabled():
    system = _book_system(plan_cache_size=0)
    query = "s[f//i][t]/p"
    first = system.answer(query)
    second = system.answer(query)
    assert not first.plan_cache_hit and not second.plan_cache_hit
    assert second.codes == system.direct_codes(query)


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_register_view_invalidates_plans():
    system = _book_system()
    query = "s[f//i][t]/p"
    system.answer(query)
    system.register_view("V9", "s/f")
    outcome = system.answer(query)
    assert not outcome.plan_cache_hit  # cache was cleared
    assert outcome.codes == system.direct_codes(query)
    assert system.stats()["plan_cache"]["invalidations"] >= 1


def test_register_view_unlocks_cached_negative():
    document = encode_tree(parse_xml(BOOK_XML))
    system = MaterializedViewSystem(document)
    system.register_view("V1", "s[t]/p")
    with pytest.raises(ViewNotAnswerableError):
        system.answer("s[p]/f")
    system.register_view("V4", "s[p]/f")
    outcome = system.answer("s[p]/f")  # stale negative must not replay
    assert outcome.codes == system.direct_codes("s[p]/f")


def test_maintenance_insert_invalidates_plans():
    system = _book_system()
    query = "s[t]/p"
    before = system.answer(query)
    editor = DocumentEditor(system)
    # Grow a new paragraph under the first section (code prefix 0.3).
    target = next(
        node for node in system.document.tree.iter_nodes() if node.label == "s"
    )
    editor.insert_subtree(target.dewey, XMLNode("p"))
    after = system.answer(query)
    assert not after.plan_cache_hit
    assert after.codes == system.direct_codes(query)
    assert len(after.codes) == len(before.codes) + 1


def test_maintenance_delete_invalidates_plans():
    system = _book_system()
    query = "s[t]/p"
    before = system.answer(query)
    target = min(code for code in before.codes)
    DocumentEditor(system).delete_subtree(target)
    after = system.answer(query)
    assert not after.plan_cache_hit
    assert after.codes == system.direct_codes(query)
    assert target not in after.codes


# ----------------------------------------------------------------------
# Property: interleaved mutations never leave stale answers
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9))
def test_interleaved_mutations_match_cold_system(seed):
    """Drive one long-lived (warm) system through an interleaving of
    answers, view registrations, inserts and deletes; after every step,
    a cold system built from the current state must agree on every
    strategy's answer (or on unanswerability)."""
    rng = random.Random(seed)
    tree = random_tree(rng, max_nodes=24, max_depth=4)
    document = encode_tree(tree)
    warm = MaterializedViewSystem(document)
    editor = DocumentEditor(warm)
    for index in range(4):
        warm.register_view(f"v{index}", random_pattern(rng, max_nodes=4))
    queries = [random_pattern(rng, max_nodes=4) for _ in range(3)]

    def check_against_cold():
        cold = MaterializedViewSystem(document, plan_cache_size=0)
        for view in warm._views.values():
            cold.register_view(view.view_id, view.pattern.copy())
        for query in queries:
            for strategy in ("HV", "MN"):
                try:
                    expected = cold.answer(query.copy(), strategy).codes
                except ViewNotAnswerableError:
                    expected = None
                try:
                    actual = warm.answer(query, strategy).codes
                except ViewNotAnswerableError:
                    actual = None
                assert actual == expected, (
                    strategy,
                    query.to_xpath(mark_answer=True),
                )

    check_against_cold()  # populate the warm cache
    next_view = 4
    for _ in range(3):
        operation = rng.choice(("register", "insert", "delete", "answer"))
        if operation == "register":
            warm.register_view(f"v{next_view}", random_pattern(rng, max_nodes=4))
            next_view += 1
        elif operation == "insert":
            nodes = list(warm.document.tree.iter_nodes())
            parent = rng.choice(nodes)
            label = rng.choice(sorted(warm.document.tree.labels()))
            editor.insert_subtree(parent.dewey, XMLNode(label))
        elif operation == "delete":
            nodes = [
                node
                for node in warm.document.tree.iter_nodes()
                if node.parent is not None
            ]
            if nodes:
                editor.delete_subtree(rng.choice(nodes).dewey)
        else:
            for query in queries:
                warm.try_answer(query)
        check_against_cold()


# ----------------------------------------------------------------------
# Parallel registration
# ----------------------------------------------------------------------
def test_parallel_registration_matches_serial(monkeypatch):
    """Force the pool path (2 workers, low threshold) and compare the
    resulting store byte-for-byte against a serially registered twin."""
    import repro.core.system as system_module

    monkeypatch.setattr(system_module, "MIN_PARALLEL_VIEWS", 1)
    views = {
        "V1": "s[t]/p",
        "V4": "s[p]/f",
        "V5": "//s//f",
        "V6": "b/s[t]",
    }
    serial = _twin_system()
    serial_ids = serial.register_views(dict(views), workers=0)

    parallel = _twin_system()
    parallel_ids = parallel.register_views(dict(views), workers=2)

    assert parallel_ids == serial_ids
    for view_id in views:
        assert parallel.fragments.codes(view_id) == serial.fragments.codes(view_id)
        assert parallel.fragments.fragment_bytes(
            view_id
        ) == serial.fragments.fragment_bytes(view_id)
    query = "s[f//i][t]/p"
    assert (
        parallel.answer(query).codes
        == serial.answer(query).codes
        == parallel.direct_codes(query)
    )
    assert parallel.stats()["views"]["registered_parallel"] == len(views)


def test_register_views_serial_below_threshold():
    system = _twin_system()
    system.register_views({"V1": "s[t]/p"}, workers=8)
    assert system.stats()["views"]["registered_parallel"] == 0


def test_parallel_duplicate_id_raises(monkeypatch):
    import repro.core.system as system_module

    monkeypatch.setattr(system_module, "MIN_PARALLEL_VIEWS", 1)
    system = _twin_system()
    system.register_view("V1", "s[t]/p")
    with pytest.raises(ValueError):
        system.register_views({"V1": "s[t]/p", "V2": "s[p]/f"}, workers=2)


def test_parallel_admission_failure_not_masked(monkeypatch):
    """Regression: a failure while *admitting* pool-evaluated views
    (after the pool succeeded) used to be swallowed by the pool-error
    fallback, which then retried serially against half-registered state
    and surfaced as a bogus duplicate-id ValueError.  The admission
    error must propagate as itself, without double registration."""
    import repro.core.system as system_module

    monkeypatch.setattr(system_module, "MIN_PARALLEL_VIEWS", 1)
    system = _twin_system()

    real_materialize = system.fragments.materialize_encoded
    calls = {"n": 0}

    def flaky(view_id, encoded):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("store failed mid-admission")
        return real_materialize(view_id, encoded)

    monkeypatch.setattr(system.fragments, "materialize_encoded", flaky)
    with pytest.raises(RuntimeError, match="mid-admission"):
        system.register_views({"V1": "s[t]/p", "V4": "s[p]/f"}, workers=2)
    # The first view was admitted before the failure; nothing was
    # registered twice and the serial path never ran.
    assert list(system._views) == ["V1"]
    assert system.stats()["views"]["registered_serial"] == 0


def _twin_system() -> MaterializedViewSystem:
    return MaterializedViewSystem(encode_tree(parse_xml(BOOK_XML)))
