"""Leaf-cover casebook: a table of (view, query) → LC pairs.

Each entry documents one distinct coverage behavior; together they form
an executable specification of Section IV's criterion as implemented
(with the pinning, whole-branch, and mutual-containment refinements of
DESIGN.md §4).
"""

import pytest

from repro.core import View, coverage_units, covers_query, leaf_cover_labels
from repro.xpath import parse_xpath

#: (view, query) → expected LC labels ("Δ" = answer obligation).
CASEBOOK = [
    # --- the paper's worked examples -------------------------------
    ("s[t]/p", "s[f//i][t]/p", {"Δ", "t", "p"}),
    ("s[p]/f", "s[f//i][t]/p", {"i", "p"}),
    # --- delta conditions -------------------------------------------
    # anchor at the answer
    ("//a/b", "//a/b", {"Δ", "b"}),
    # anchor above the answer: everything below is fragment-checkable
    ("//a", "//a/b[c]", {"Δ", "c"}),
    # anchor besides the answer: no delta, but the answer leaf is still
    # certified via the pinned parent (exactly like the paper's
    # LC(V4, Qe) = {i, p})
    ("//a[p]/f", "//a[f]/p", {"p", "f"}),
    # --- fragment-checkable predicates ------------------------------
    # predicate below the answer is checkable on the fragment
    ("//a/b", "//a/b[c][d]", {"Δ", "c", "d"}),
    # deep predicate below the answer
    ("//a/b", "//a/b[c//e]", {"Δ", "e"}),
    # --- pinned implication ------------------------------------------
    # /-spine: the branch is certified by the view definition
    ("//a[b]/c", "//a[b][d]/c", {"Δ", "b", "c"}),
    # two levels of /-spine
    ("//a[x]/b[y]/c", "//a[x][q]/b[y]/c", {"Δ", "x", "y", "c"}),
    # //-spine below the host breaks pinning
    ("//a[b]//c", "//a[b]/a/c", {"Δ", "c"}),
    # a deep concrete view branch implies shallower/looser query
    # branches (unminimized query: [b/d] certifies [b] and [.//d] too)
    ("//a[b/d]/c", "//a[b/d][b][.//d]/c", {"Δ", "d", "b", "c"}),
    # a view more specific than the query has no homomorphism at all
    ("//a[b/d]/c", "//a[.//d]/c", set()),
    # child branch NOT implied by a descendant branch
    ("//a[.//d]/c", "//a[d]/c", {"Δ", "c"}),
    # --- whole-branch rule -------------------------------------------
    # partial branch match does not cover the shared intermediate
    ("//a[b[c]]/e", "//a[b[c][d]]/e", {"Δ", "e"}),
    # the full branch does
    ("//a[b[c][d]]/e", "//a[b[c][d]]/e", {"Δ", "c", "d", "e"}),
    # --- wildcards -----------------------------------------------------
    # view wildcard branch cannot certify a labeled query branch
    ("//a[*]/c", "//a[b]/c", {"Δ", "c"}),
    # a view wildcard branch certifies a query wildcard branch, but
    # not a labeled one
    ("//a[*]/c", "//a[*][d]/c", {"Δ", "*", "c"}),
    # a labeled view branch cannot map onto a query wildcard (no hom)
    ("//a[b]/c", "//a[*]/c", set()),
    # --- mutual containment -------------------------------------------
    # identical views cover everything even with unpinned predicates
    ("//a[b]//c", "//a[b]//c", {"Δ", "b", "c"}),
    ("//n/*[c]//q", "//n/*[c]//q", {"Δ", "c", "q"}),
]


@pytest.mark.parametrize("view_expr,query_expr,expected", CASEBOOK)
def test_leaf_cover_casebook(view_expr, query_expr, expected):
    view = View.from_xpath("V", view_expr)
    query = parse_xpath(query_expr)
    assert leaf_cover_labels(view, query) == expected, (view_expr, query_expr)


#: (views, query, answerable?) — composition cases.
ANSWERABILITY = [
    (["s[t]/p", "s[p]/f"], "s[f//i][t]/p", True),
    (["s[t]/p"], "s[f//i][t]/p", False),
    (["//a[b]/e", "//a[c]/e", "//a[d]/e"], "//a[b][c][d]/e", True),
    (["//a[b]/e", "//a[c]/e"], "//a[b][c][d]/e", False),
    # delta missing: both views return non-ancestors of the answer
    (["//a[c]/b"], "//a[b]/c", False),
    # delta from one, predicate from the other
    (["//a/c", "//a[b]/c"], "//a[b]/c", True),
    # shared-intermediate trap must stay unanswerable
    (["//a[b[c]]/e", "//a[b[d]]/e"], "//a[b[c][d]]/e", False),
    (["//a[b[c]]/e", "//a[b[d]]/e"], "//a[b[c]][b[d]]/e", True),
    # a view equivalent to the query answers alone
    (["//a[b]//c"], "//a[b]//c", True),
]


@pytest.mark.parametrize("view_exprs,query_expr,expected", ANSWERABILITY)
def test_answerability_casebook(view_exprs, query_expr, expected):
    query = parse_xpath(query_expr)
    units = []
    for index, expression in enumerate(view_exprs):
        units.extend(coverage_units(View.from_xpath(f"V{index}", expression), query))
    assert covers_query(units, query) is expected, (view_exprs, query_expr)
