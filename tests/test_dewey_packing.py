"""Property tests: packed Dewey byte order ≡ tuple-code semantics.

The packed form (``repro.xmltree.dewey.pack_code``) is only allowed to
exist because three equivalences hold for *arbitrary* codes:

1. lexicographic ``bytes`` order equals ``compare_codes`` document
   order (what every hot-loop sort and merge relies on);
2. byte-prefix equals tuple-prefix (ancestry tests, including the
   ancestor/descendant edge cases where one code prefixes another);
3. the packed descendant range brackets exactly the codes that
   ``descendant_range_key`` / ``is_prefix`` bracket.

Violating any of these would silently reorder answers or corrupt range
scans, so they are pinned here with Hypothesis.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.xmltree.dewey import (
    compare_codes,
    descendant_range_key,
    is_prefix,
    pack_code,
    pack_component,
    packed_depth,
    packed_descendant_range,
    packed_is_prefix,
    packed_prefixes,
    unpack_code,
)

# Components straddle every packing regime: single-byte (< 0x80),
# multi-byte headers, and byte-boundary neighbours.
component = st.one_of(
    st.integers(0, 0x7F),
    st.sampled_from([0x7F, 0x80, 0x81, 0xFF, 0x100, 0xFFFF, 0x10000]),
    st.integers(0, 2**40),
)
code = st.lists(component, min_size=1, max_size=8).map(tuple)
maybe_empty_code = st.lists(component, max_size=8).map(tuple)


@settings(max_examples=400, deadline=None)
@given(maybe_empty_code)
def test_roundtrip_and_depth(c):
    packed = pack_code(c)
    assert unpack_code(packed) == c
    assert packed_depth(packed) == len(c)
    assert packed == b"".join(pack_component(x) for x in c)


@settings(max_examples=400, deadline=None)
@given(code, code)
def test_byte_order_equals_document_order(a, b):
    cmp = compare_codes(a, b)
    pa, pb = pack_code(a), pack_code(b)
    if cmp < 0:
        assert pa < pb
    elif cmp > 0:
        assert pa > pb
    else:
        assert pa == pb


@settings(max_examples=400, deadline=None)
@given(code, code)
def test_prefix_equivalence(a, b):
    # byte-prefix ⇔ tuple-prefix, in both directions (covers the
    # ancestor/descendant edge case where a strictly prefixes b).
    assert packed_is_prefix(pack_code(a), pack_code(b)) == is_prefix(a, b)
    assert packed_is_prefix(pack_code(b), pack_code(a)) == is_prefix(b, a)


@settings(max_examples=400, deadline=None)
@given(code, code)
def test_descendant_range_equivalence(a, b):
    """``low <= packed(b) < high`` exactly when ``b`` is ``a`` or a
    descendant of ``a`` — the same set ``descendant_range_key`` brackets
    on tuples (both equal prefix-ness, the ground truth)."""
    low, high = packed_descendant_range(pack_code(a))
    in_packed_range = low <= pack_code(b) < high
    tuple_low, tuple_high = descendant_range_key(a)
    in_tuple_range = tuple_low <= b < tuple_high
    assert in_packed_range == is_prefix(a, b)
    assert in_tuple_range == in_packed_range


@settings(max_examples=400, deadline=None)
@given(code)
def test_prefixes_enumerate_ancestors(c):
    packed = pack_code(c)
    prefixes = packed_prefixes(packed)
    assert len(prefixes) == len(c)
    for depth, prefix in enumerate(prefixes, start=1):
        assert prefix == pack_code(c[:depth])
    assert prefixes[-1] == packed


@settings(max_examples=200, deadline=None)
@given(code, st.integers(0, 2**40))
def test_sorted_streams_agree(c, extra):
    """Sorting by packed bytes equals sorting by compare_codes order
    for a whole stream (the merge-join invariant)."""
    family = [c, c + (extra,), c[:-1] + (extra,), (extra,) + c, c + c]
    family = [f for f in family if f]
    by_packed = sorted(family, key=pack_code)
    # insertion sort by compare_codes as ground truth
    by_cmp = []
    for item in family:
        pos = 0
        while pos < len(by_cmp) and compare_codes(by_cmp[pos], item) < 0:
            pos += 1
        by_cmp.insert(pos, item)
    assert by_packed == by_cmp


def test_negative_component_rejected():
    try:
        pack_code((1, -2))
    except EncodingError:
        pass
    else:  # pragma: no cover - failure branch
        raise AssertionError("negative component must not pack")


def test_truncated_bytes_rejected():
    packed = pack_code((0x80,))
    try:
        unpack_code(packed[:-1])
    except EncodingError:
        pass
    else:  # pragma: no cover - failure branch
        raise AssertionError("truncated packing must not decode")


def test_empty_code_descendant_range_rejected():
    try:
        packed_descendant_range(b"")
    except EncodingError:
        pass
    else:  # pragma: no cover - failure branch
        raise AssertionError("empty prefix has no descendant range")
