"""Tests for the XPath fragment parser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath import Axis, parse_path, parse_xpath


class TestMainPath:
    def test_absolute_child_path(self):
        pattern = parse_xpath("/a/b/c")
        labels = [n.label for n in pattern.ret.root_path()]
        axes = [n.axis for n in pattern.ret.root_path()]
        assert labels == ["a", "b", "c"]
        assert axes == [Axis.CHILD, Axis.CHILD, Axis.CHILD]
        assert pattern.ret.label == "c"

    def test_descendant_axes(self):
        pattern = parse_xpath("//a//b/c")
        axes = [n.axis for n in pattern.ret.root_path()]
        assert axes == [Axis.DESCENDANT, Axis.DESCENDANT, Axis.CHILD]

    def test_bare_expression_means_descendant_root(self):
        """Paper style: 's[t]/p' is anchored anywhere, i.e. //s[t]/p."""
        pattern = parse_xpath("s[t]/p")
        assert pattern.root.axis is Axis.DESCENDANT
        assert pattern == parse_xpath("//s[t]/p")

    def test_wildcard_steps(self):
        pattern = parse_xpath("/a/*/b")
        middle = pattern.ret.parent
        assert middle.is_wildcard

    def test_answer_node_is_path_tail(self):
        pattern = parse_xpath("/a[b]/c[d]")
        assert pattern.ret.label == "c"

    def test_whitespace_tolerated(self):
        assert parse_xpath(" /a [ b ] / c ") == parse_xpath("/a[b]/c")


class TestPredicates:
    def test_simple_branch(self):
        pattern = parse_xpath("/a[b]/c")
        a = pattern.root
        assert sorted(child.label for child in a.children) == ["b", "c"]

    def test_branch_path(self):
        pattern = parse_xpath("/a[b/d]/c")
        b = next(child for child in pattern.root.children if child.label == "b")
        assert [c.label for c in b.children] == ["d"]

    def test_dot_slash_spelling(self):
        assert parse_xpath("/a[./b/d]/c") == parse_xpath("/a[b/d]/c")

    def test_dot_descendant_spelling(self):
        pattern = parse_xpath("/a[.//b]/c")
        b = next(child for child in pattern.root.children if child.label == "b")
        assert b.axis is Axis.DESCENDANT

    def test_slash_spellings_inside_predicate(self):
        assert parse_xpath("/a[//b]/c") == parse_xpath("/a[.//b]/c")
        assert parse_xpath("/a[/b]/c") == parse_xpath("/a[b]/c")

    def test_nested_predicates(self):
        pattern = parse_xpath("/a[b[c]/d]/e")
        b = next(child for child in pattern.root.children if child.label == "b")
        assert sorted(child.label for child in b.children) == ["c", "d"]

    def test_multiple_predicates(self):
        pattern = parse_xpath("/a[b][c][d]/e")
        assert sorted(c.label for c in pattern.root.children) == list("bcde")

    def test_wildcard_in_predicate(self):
        pattern = parse_xpath("/a[*//d]/e")
        star = next(c for c in pattern.root.children if c.is_wildcard)
        assert star.children[0].label == "d"
        assert star.children[0].axis is Axis.DESCENDANT


class TestAttributePredicates:
    def test_existence(self):
        pattern = parse_xpath("//item[@id]/name")
        item = pattern.root
        assert item.constraints[0].name == "id"
        assert item.constraints[0].op is None

    def test_equality_string(self):
        pattern = parse_xpath("//item[@id='x7']/name")
        constraint = pattern.root.constraints[0]
        assert (constraint.op, constraint.value) == ("=", "x7")

    def test_comparison_number(self):
        pattern = parse_xpath("//person[@age>=30]")
        constraint = pattern.root.constraints[0]
        assert (constraint.op, constraint.value) == (">=", "30")

    def test_double_quoted_literal(self):
        pattern = parse_xpath('//a[@k="v"]')
        assert pattern.root.constraints[0].value == "v"

    def test_mixed_structural_and_attribute(self):
        pattern = parse_xpath("//a[@id][b]/c")
        assert len(pattern.root.constraints) == 1
        assert sorted(c.label for c in pattern.root.children) == ["b", "c"]


class TestErrors:
    @pytest.mark.parametrize(
        "expression",
        [
            "",
            "/",
            "//",
            "/a[",
            "/a]",
            "/a[]",
            "/a[b",
            "/a[@]",
            "/a[@k=]",
            "/a[@k='x]",
            "/a/b[.]",
            "/a/../b",
            "/a/b trailing",
            "/a[b]extra",
        ],
    )
    def test_syntax_errors(self, expression):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(expression)


class TestParsePath:
    def test_accepts_plain_path(self):
        pattern = parse_path("//a/b//c")
        assert pattern.is_path()

    def test_rejects_branches(self):
        with pytest.raises(XPathSyntaxError):
            parse_path("//a[b]/c")

    def test_rejects_attribute_predicates(self):
        with pytest.raises(XPathSyntaxError):
            parse_path("//a[@id]/c")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "expression",
        [
            "/a/b/c",
            "//a//b",
            "/a[b]/c",
            "/a[b/d][.//e]/c",
            "//a[*[d]]/e",
            "//item[@id='1'][name]/description",
            "s[f//i][t]/p",
        ],
    )
    def test_to_xpath_reparses_identically(self, expression):
        pattern = parse_xpath(expression)
        assert parse_xpath(pattern.to_xpath()) == pattern


class TestParseCache:
    """parse_xpath memoizes on the expression string but must hand each
    caller a private pattern — mutating one parse can never leak into a
    later parse of the same expression."""

    def test_cached_parse_is_equal_but_independent(self):
        from repro.xpath.parser import parse_cache_clear, parse_cache_info

        parse_cache_clear()
        first = parse_xpath("s[f//i][t]/p")
        second = parse_xpath("s[f//i][t]/p")
        assert parse_cache_info().hits >= 1
        assert first == second
        assert first is not second
        shared = {id(node) for node in first.iter_nodes()} & {
            id(node) for node in second.iter_nodes()
        }
        assert not shared  # no structural aliasing at all

    def test_caller_mutation_does_not_poison_cache(self):
        baseline = parse_xpath("//a[b]/c")
        mutated = parse_xpath("//a[b]/c")
        mutated.ret.new_child("z", Axis.CHILD)
        fresh = parse_xpath("//a[b]/c")
        assert fresh == baseline
        assert fresh != mutated

    def test_syntax_errors_are_not_cached(self):
        for _ in range(2):  # identical failures on repeat calls
            with pytest.raises(XPathSyntaxError):
                parse_xpath("//a[")
