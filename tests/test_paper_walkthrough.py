"""The paper's running example, end to end (Sections II-V).

These tests pin the library to the paper's own worked numbers: Figure 2
encodings, the Figure 3 FST, Table I/II decomposition, the Example 3.2
false-negative scenario, Example 3.4 filtering, Example 4.3 selection
and Example 5.1 rewriting.
"""

import pytest

from repro import MaterializedViewSystem, encode_tree
from repro.core import VFilter, View, select_heuristic
from repro.core.leaf_cover import leaf_cover_labels
from repro.xmltree import DocumentSchema, XMLTree, XMLNode, format_code
from repro.xpath import decompose, normalize, parse_xpath, str_text


def paper_book_tree() -> XMLTree:
    """Figure 2's book.xml, with the sibling layout that reproduces the
    paper's exact codes for the b-children (0,1,4,5,8)."""
    b = XMLNode("b")
    b.new_child("t")
    b.new_child("a")
    b.new_child("a")
    s1 = b.new_child("s")
    s1.new_child("t")
    s1.new_child("p")
    f1 = s1.new_child("f")
    f1.new_child("i")
    s2 = b.new_child("s")
    s2.new_child("t")
    s2.new_child("p")
    s2.new_child("p")
    s3 = s2.new_child("s")  # components 0,1,5 then 6 -> s3 is 0.8.6
    s3.new_child("t")
    s3.new_child("p")
    f = s3.new_child("f")
    f.new_child("i")
    return XMLTree(b)


@pytest.fixture
def paper_schema():
    return DocumentSchema("b", {
        "b": ["t", "a", "s"],
        "s": ["t", "p", "s", "f"],
        "t": [], "a": [], "p": [], "f": ["i"], "i": [],
    })


@pytest.fixture
def paper_doc(paper_schema):
    return encode_tree(paper_book_tree(), paper_schema)


class TestFigure2And3:
    def test_book_children_codes(self, paper_doc):
        """t,a,a,s,s under book receive 0,1,4,5,8 exactly as printed."""
        codes = [format_code(c.dewey) for c in paper_doc.tree.root.children]
        assert codes == ["0.0", "0.1", "0.4", "0.5", "0.8"]

    def test_example_2_1_label_path_derivation(self, paper_doc):
        """0.8.6 decodes through the FST as b/s/s (Example 2.1)."""
        s3 = None
        for node in paper_doc.tree.iter_nodes():
            if node.dewey == (0, 8, 6):
                s3 = node
        assert s3 is not None and s3.label == "s"
        assert paper_doc.fst.decode((0, 8, 6)) == ("b", "s", "s")

    def test_common_prefix_reasoning(self, paper_doc):
        """Nodes 0.8.6.0 and 0.8.6.1 share two s-labeled ancestors."""
        from repro.xmltree import common_prefix

        prefix = common_prefix((0, 8, 6, 0), (0, 8, 6, 1))
        assert prefix == (0, 8, 6)
        assert paper_doc.fst.decode(prefix) == ("b", "s", "s")

    def test_fst_transitions_match_figure_3(self, paper_doc):
        table = paper_doc.fst.transitions()
        assert table == {"b": ("t", "a", "s"), "s": ("t", "p", "s", "f"),
                         "f": ("i",)}


TABLE_I = {
    "V1": "s[t]/p",
    "V2": "s[.//f]/p",
    "V3": "s//*/t",
    "V4": "s[p]/f",
}


class TestSectionIII:
    def test_table_ii_decompositions(self):
        views = {vid: View.from_xpath(vid, expr) for vid, expr in TABLE_I.items()}
        assert [p.to_xpath() for p in views["V1"].paths] == ["//s/t", "//s/p"]
        assert [p.to_xpath() for p in views["V2"].paths] == ["//s//f", "//s/p"]
        assert [p.to_xpath() for p in views["V3"].paths] == ["//s//*/t"]
        assert [p.to_xpath() for p in views["V4"].paths] == ["//s/p", "//s/f"]

    def test_str_transformation(self):
        """STR omits '/' and writes '#' for '//' (Section III-B)."""
        path = parse_xpath("/b//f").to_path_pattern()
        assert str_text(path) == "b#f"
        path2 = parse_xpath("/b/s").to_path_pattern()
        assert str_text(path2) == "bs"

    def test_example_3_2_false_negative_without_normalization(self):
        """Reading the unnormalized s/*//t misses the s//*/t automaton;
        normalization (Example 3.3) repairs it."""
        raw = parse_xpath("//s/*//t").to_path_pattern()
        normalized = normalize(raw)
        assert normalized.to_xpath() == "//s//*/t"
        vfilter = VFilter()
        vfilter.add_view(View.from_xpath("V3", "s//*/t"))
        assert vfilter.filter(parse_xpath("//s/*//t")).candidates == ["V3"]

    def test_example_3_4_filtering(self):
        vfilter = VFilter()
        for vid, expr in TABLE_I.items():
            vfilter.add_view(View.from_xpath(vid, expr))
        result = vfilter.filter(parse_xpath("s[f//i][t]/p"))
        # V3 is the only view filtered out.
        assert result.candidates == ["V1", "V2", "V4"]
        # the sorted lists of Example 3.4 (shape): s/t -> {V1}, s/p -> all
        by_leaf = {p.leaf_label(): entries for p, entries in result.lists.items()}
        assert [vid for vid, _ in by_leaf["t"]] == ["V1"]
        assert sorted(vid for vid, _ in by_leaf["p"]) == ["V1", "V2", "V4"]
        assert sorted(vid for vid, _ in by_leaf["i"]) == ["V2", "V4"]


class TestSectionIV:
    def test_example_4_3_leaf_covers(self):
        query = parse_xpath("s[f//i][t]/p")
        assert leaf_cover_labels(View.from_xpath("V4", "s[p]/f"), query) == {
            "i", "p",
        }
        assert leaf_cover_labels(View.from_xpath("V1", "s[t]/p"), query) == {
            "Δ", "t", "p",
        }

    def test_example_4_3_heuristic_selects_v1_v4(self):
        vfilter = VFilter()
        views = {vid: View.from_xpath(vid, expr) for vid, expr in TABLE_I.items()}
        for view in views.values():
            vfilter.add_view(view)
        query = parse_xpath("s[f//i][t]/p")
        result = vfilter.filter(query)
        selection = select_heuristic(result, views.__getitem__, query)
        assert sorted(selection.view_ids) == ["V1", "V4"]


class TestSectionVExample51:
    def test_rewriting_on_the_book_document(self, paper_doc):
        """V1 = s[t]/p and V2 = s[p]/f answer Qe = s[f//i][t]/p; the
        surviving p-nodes are exactly those under an s that also has an
        f//i — computed from fragments + encodings only."""
        system = MaterializedViewSystem(paper_doc)
        assert system.register_view("V1", "s[t]/p")
        assert system.register_view("V2", "s[p]/f")
        outcome = system.answer("s[f//i][t]/p")
        truth = system.direct_codes("s[f//i][t]/p")
        assert outcome.codes == truth
        assert sorted(outcome.view_ids) == ["V1", "V2"]
        # extraction happened from one of the delta-capable views
        assert outcome.rewrite_result.extraction_view in ("V1", "V2")
        # all answers are p nodes under an s with f//i
        for code in outcome.codes:
            assert paper_doc.fst.label_of(code) == "p"
