"""Tests for refinement, the holistic twig join and rewriting."""

import pytest

from repro.core import MaterializedViewSystem, View, reencode_fragment
from repro.core.leaf_cover import coverage_units
from repro.core.refine import compensating_pattern, refine_unit
from repro.core.twig_join import anchor_instantiations
from repro.storage import FragmentStore
from repro.xmltree import build_tree, encode_tree
from repro.xpath import Axis, parse_xpath


def _system(spec, views):
    doc = encode_tree(build_tree(spec))
    system = MaterializedViewSystem(doc)
    for view_id, expression in views.items():
        assert system.register_view(view_id, expression)
    return system


class TestCompensatingPattern:
    def test_anchor_at_answer_keeps_ret(self):
        query = parse_xpath("//a/b[c]")
        view = View.from_xpath("V", "//a/b")
        unit = coverage_units(view, query)[0]
        pattern = compensating_pattern(unit, query)
        assert pattern.root.label == "b"
        assert pattern.ret is pattern.root
        assert pattern.root.axis is Axis.CHILD

    def test_anchor_above_answer_marks_ret_below(self):
        query = parse_xpath("//a/b/c")
        view = View.from_xpath("V", "//a/b")
        unit = coverage_units(view, query)[0]
        pattern = compensating_pattern(unit, query)
        assert pattern.root.label == "b"
        assert pattern.ret.label == "c"


class TestRefine:
    def _fragments(self, spec, view_expr):
        doc = encode_tree(build_tree(spec))
        from repro.matching import evaluate

        view = View.from_xpath("V", view_expr)
        store = FragmentStore()
        answers = evaluate(view.pattern, doc.tree)
        store.materialize("V", [(n.dewey, n) for n in answers])
        return view, store.fragments("V")

    def test_case1_skip_when_view_implies(self):
        query = parse_xpath("//a/b[c]")
        view, fragments = self._fragments(
            ("r", [("a", [("b", ["c"]), ("b", ["d"])])]), "//a/b[c]"
        )
        unit = coverage_units(view, query)[0]
        refined = refine_unit(unit, query, fragments)
        assert refined.skipped
        assert len(refined.fragments) == len(fragments)

    def test_predicates_pushed_down(self):
        query = parse_xpath("//a/b[c]")
        view, fragments = self._fragments(
            ("r", [("a", [("b", ["c"]), ("b", ["d"])])]), "//a/b"
        )
        unit = coverage_units(view, query)[0]
        refined = refine_unit(unit, query, fragments)
        assert not refined.skipped
        assert len(fragments) == 2
        assert len(refined.fragments) == 1
        assert refined.fragments[0].root.children[0].label == "c"


class TestAnchorInstantiations:
    def _path(self, expression):
        pattern = parse_xpath(expression)
        return pattern.ret.root_path()

    def test_child_chain_unique_placement(self):
        nodes = self._path("/a/b/c")
        placements = anchor_instantiations(
            nodes, (0, 1, 2), ("a", "b", "c"), {}
        )
        assert len(placements) == 1
        assert placements[0][id(nodes[0])] == (0,)
        assert placements[0][id(nodes[2])] == (0, 1, 2)

    def test_label_mismatch_rejected(self):
        nodes = self._path("/a/b")
        assert anchor_instantiations(nodes, (0, 1), ("a", "x"), {}) == []

    def test_descendant_multiple_placements(self):
        nodes = self._path("//a//a")
        placements = anchor_instantiations(
            nodes, (0, 1, 2), ("a", "a", "a"), {}
        )
        # upper a at depth 1 or 2; anchor fixed at depth 3
        assert len(placements) == 2

    def test_wildcard_matches_any_label(self):
        nodes = self._path("/*/b")
        assert anchor_instantiations(nodes, (0, 1), ("z", "b"), {})

    def test_respects_existing_assignment(self):
        nodes = self._path("//x/a/b")
        labels = ("x", "a", "b")
        fixed = {id(nodes[1]): (0, 5)}
        assert anchor_instantiations(nodes, (0, 1, 2), labels, fixed) == []
        fixed_ok = {id(nodes[1]): (0, 1)}
        placements = anchor_instantiations(nodes, (0, 1, 2), labels, fixed_ok)
        assert len(placements) == 1
        # fixed node not re-bound
        assert id(nodes[1]) not in placements[0]

    def test_root_axis_child_pins_document_root(self):
        nodes = self._path("/a//b")
        placements = anchor_instantiations(
            nodes, (0, 1, 2), ("a", "x", "b"), {}
        )
        assert placements and all(
            p[id(nodes[0])] == (0,) for p in placements
        )


class TestJoinScenarios:
    def test_example_4_2_join_requires_shared_skeleton(self):
        """Paper Example 4.2: d-nodes under different b-parents must not
        be credited with the other branch's predicate."""
        # data: a / b1[c, d1], b2[d2]; query wants a[b[c]/d]
        spec = ("r", [("a", [("b", ["c", "d"]), ("b", ["d"])])])
        system = _system(spec, {
            "Vd": "//a/b/d",
            "Vc": "//a/b[c]/d",
        })
        query = "//a/b[c]/d"
        outcome = system.answer(query)
        truth = system.direct_codes(query)
        assert outcome.codes == truth
        assert len(outcome.codes) == 1

    def test_cross_parent_join_rejected(self):
        """Q = s[t][f]/p: t and f must hang under the *same* s."""
        spec = ("r", [
            ("s", ["t", "p"]),
            ("s", ["f", "p"]),
            ("s", ["t", "f", "p"]),
        ])
        system = _system(spec, {"V1": "//s[t]/p", "V2": "//s[f]/p"})
        query = "//s[t][f]/p"
        outcome = system.answer(query)
        assert outcome.codes == system.direct_codes(query)
        assert len(outcome.codes) == 1

    def test_empty_result_when_join_fails(self):
        spec = ("r", [("s", ["t", "p"]), ("s", ["f", "p"])])
        system = _system(spec, {"V1": "//s[t]/p", "V2": "//s[f]/p"})
        outcome = system.answer("//s[t][f]/p")
        assert outcome.codes == []

    def test_empty_result_when_refinement_empties(self):
        spec = ("r", [("s", ["t", ("p", ["x"])])])
        system = _system(spec, {"V1": "//s[t]/p"})
        outcome = system.answer("//s[t]/p[y]")
        assert outcome.codes == []

    def test_deep_anchor_chain(self):
        spec = ("r", [("a", [("a", [("b", ["c"]), "d"])])])
        system = _system(spec, {"V1": "//a/a[b]/d", "V2": "//a/a[b/c]/d"})
        query = "//a/a[b/c]/d"
        outcome = system.answer(query)
        assert outcome.codes == system.direct_codes(query)

    def test_answers_carry_fragment_subtrees(self):
        spec = ("r", [("s", ["t", ("p", ["q"])])])
        system = _system(spec, {"V1": "//s[t]/p"})
        outcome = system.answer("//s[t]/p")
        result = outcome.rewrite_result
        assert set(result.answers) == set(outcome.codes)
        answer = result.answers[outcome.codes[0]]
        assert answer.label == "p"
        assert [c.label for c in answer.children] == ["q"]


class TestReencodeFragment:
    def test_codes_match_original_document(self):
        doc = encode_tree(build_tree(
            ("r", [("a", ["x", "y", ("b", ["z"]), "x"])])
        ))
        a = doc.tree.root.children[0]
        original = {n.label_path() + (n.dewey,) for n in a.iter_subtree()}
        # strip codes from a copy via serialization round trip
        from repro.storage import decode_fragment, encode_fragment

        copy, _ = decode_fragment(encode_fragment(a))
        reencode_fragment(copy, a.dewey, doc.schema)
        copied = {n.label_path() + (n.dewey,) for n in copy.iter_subtree()}
        # label_path of the copy is relative; compare codes per position
        assert sorted(n.dewey for n in copy.iter_subtree()) == sorted(
            n.dewey for n in a.iter_subtree()
        )
        del original, copied
