"""Self-test corpus for xmvrlint (analysis/engine.py + rules.py).

Each rule L1-L5 gets positive fixtures (seeded violations that must
fire) and negative fixtures (compliant code that must stay clean),
plus suppression handling, the exit-code contract, JSON output and the
``--fix`` return-annotation inserter.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import engine
from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    all_rules,
    lint_paths,
)
from repro.analysis.lintcli import main as lint_main


def _lint_snippet(tmp_path: Path, relpath: str, source: str, select=None):
    """Write a snippet at ``tmp_path/relpath`` and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], all_rules(select), root=tmp_path)


def _rules_hit(violations):
    return {violation.rule for violation in violations}


# ----------------------------------------------------------------------
# L1 — invalidation discipline
# ----------------------------------------------------------------------
L1_MISSING = """
    class XMVRSystem:
        def register_view(self, view):
            self._views[view.view_id] = view
            return True
"""

L1_EARLY_RETURN = """
    class MaterializedViewSystem:
        def drop_view(self, view_id):
            self.fragments.drop(view_id)
            if view_id == "skip":
                return False
            self._invalidate_plans()
            return True
"""

L1_OK_DIRECT = """
    class XMVRSystem:
        def register_view(self, view):
            self._views[view.view_id] = view
            self._invalidate_plans()
            return True
"""

L1_OK_TRANSITIVE = """
    class XMVRSystem:
        def _admit(self, view):
            self._views[view.view_id] = view
            self._invalidate_plans()
            return True

        def register_view(self, view):
            self.fragments.materialize(view.view_id, [])
            return self._admit(view)
"""

L1_OK_BOTH_BRANCHES = """
    class DocumentEditor:
        def edit(self, node):
            node.detach()
            if node.label == "a":
                self.system._invalidate_plans()
            else:
                self.system._invalidate_plans()
            return node
"""

L1_OK_RAISE = """
    class XMVRSystem:
        def register_view(self, view):
            if view.view_id in self._views:
                raise ValueError("duplicate")
            self._views[view.view_id] = view
            self._invalidate_plans()
"""

L1_LOOP_ONLY = """
    class XMVRSystem:
        def register_many(self, views):
            for view in views:
                self.fragments.materialize(view.view_id, [])
                self._invalidate_plans()
            return views
"""


def test_l1_fires_on_missing_invalidation(tmp_path):
    violations = _lint_snippet(tmp_path, "core/bad.py", L1_MISSING, ["L1"])
    assert _rules_hit(violations) == {"L1"}
    assert "register_view" in violations[0].message


def test_l1_fires_on_uninvalidated_early_return(tmp_path):
    violations = _lint_snippet(tmp_path, "core/bad.py", L1_EARLY_RETURN, ["L1"])
    assert _rules_hit(violations) == {"L1"}


def test_l1_loop_body_call_does_not_guarantee(tmp_path):
    # A call inside a for-loop may run zero times; the rule must not
    # accept it as covering the method's exit.
    violations = _lint_snippet(tmp_path, "core/bad.py", L1_LOOP_ONLY, ["L1"])
    assert _rules_hit(violations) == {"L1"}


@pytest.mark.parametrize(
    "source",
    [L1_OK_DIRECT, L1_OK_TRANSITIVE, L1_OK_BOTH_BRANCHES, L1_OK_RAISE],
    ids=["direct", "transitive", "both-branches", "raise-path"],
)
def test_l1_accepts_compliant_methods(tmp_path, source):
    assert _lint_snippet(tmp_path, "core/ok.py", source, ["L1"]) == []


def test_l1_ignores_unchecked_classes(tmp_path):
    source = """
        class SomethingElse:
            def mutate(self):
                self._views["x"] = 1
    """
    assert _lint_snippet(tmp_path, "core/ok.py", source, ["L1"]) == []


# ----------------------------------------------------------------------
# L2 — frozen interned patterns
# ----------------------------------------------------------------------
L2_BAD = """
    def remark(pattern):
        pattern.ret.axis = None
        pattern.root.constraints = ()
"""


def test_l2_fires_outside_construction_modules(tmp_path):
    violations = _lint_snippet(tmp_path, "core/bad.py", L2_BAD, ["L2"])
    assert len(violations) == 2
    assert _rules_hit(violations) == {"L2"}


def test_l2_allows_construction_modules(tmp_path):
    for allowed in ("builder.py", "parser.py", "normalize.py", "pattern.py"):
        assert _lint_snippet(tmp_path, f"xpath/{allowed}", L2_BAD, ["L2"]) == []


def test_l2_same_filename_outside_xpath_still_fires(tmp_path):
    violations = _lint_snippet(tmp_path, "core/builder.py", L2_BAD, ["L2"])
    assert _rules_hit(violations) == {"L2"}


# ----------------------------------------------------------------------
# L3 — id()-key escapes
# ----------------------------------------------------------------------
L3_SELF_STORE = """
    class Memo:
        def build(self, nodes):
            self._index = {id(node): node.label for node in nodes}
"""

L3_SUBSCRIPT_STORE = """
    class Memo:
        def record(self, node, value):
            self._index[id(node)] = value
"""

L3_PUBLIC_RETURN = """
    def index_nodes(nodes):
        return {id(node): node for node in nodes}
"""

L3_RETAINED = """
    class Memo:
        __slots__ = ("pattern", "_index")

        def build(self, pattern):
            self.pattern = pattern
            self._index = {id(node): node.label for node in pattern.nodes}
"""

L3_PRIVATE_RETURN = """
    def _index_nodes(nodes):
        return {id(node): node for node in nodes}
"""

L3_LOCAL_ONLY = """
    def count_distinct(nodes):
        seen = {id(node) for node in nodes}
        return len(seen)
"""


def test_l3_fires_on_self_stored_id_dict(tmp_path):
    violations = _lint_snippet(tmp_path, "core/bad.py", L3_SELF_STORE, ["L3"])
    assert _rules_hit(violations) == {"L3"}


def test_l3_fires_on_id_subscript_store(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/bad.py", L3_SUBSCRIPT_STORE, ["L3"]
    )
    assert _rules_hit(violations) == {"L3"}


def test_l3_fires_on_public_return(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/bad.py", L3_PUBLIC_RETURN, ["L3"]
    )
    assert _rules_hit(violations) == {"L3"}


@pytest.mark.parametrize(
    "source",
    [L3_RETAINED, L3_PRIVATE_RETURN, L3_LOCAL_ONLY],
    ids=["retained-slot", "private-fn", "local-only"],
)
def test_l3_accepts_safe_uses(tmp_path, source):
    assert _lint_snippet(tmp_path, "core/ok.py", source, ["L3"]) == []


# ----------------------------------------------------------------------
# L4 — wall clock / randomness in core/
# ----------------------------------------------------------------------
L4_BAD = """
    import random
    import time

    def jitter():
        return time.time() + random.random()
"""

L4_MONOTONIC = """
    import time

    def measure():
        return time.perf_counter()

    def deadline():
        return time.monotonic() + 1.0
"""

L4_FROM_IMPORT = """
    from time import monotonic, perf_counter

    def measure():
        return perf_counter() - monotonic()
"""

L4_OK_CLOCK = """
    class Pipeline:
        def __init__(self, telemetry):
            self._clock = telemetry.clock

        def measure(self):
            started = self._clock.monotonic()
            return self._clock.monotonic() - started
"""


def test_l4_fires_in_core(tmp_path):
    violations = _lint_snippet(tmp_path, "core/bad.py", L4_BAD, ["L4"])
    # import random, time.time() call, random.random() is reached via
    # the banned import — at least the import and the call must fire.
    assert _rules_hit(violations) == {"L4"}
    assert len(violations) >= 2


def test_l4_bans_monotonic_timers_in_core(tmp_path):
    # Since the telemetry subsystem, the injected obs.Clock is the only
    # sanctioned time source in core/ — the previously tolerated
    # time.perf_counter()/time.monotonic() now fire.
    violations = _lint_snippet(
        tmp_path, "core/timers.py", L4_MONOTONIC, ["L4"]
    )
    assert _rules_hit(violations) == {"L4"}
    assert len(violations) == 2


def test_l4_bans_timer_from_imports_in_core(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/fromimp.py", L4_FROM_IMPORT, ["L4"]
    )
    assert _rules_hit(violations) == {"L4"}


def test_l4_allows_injected_clock(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/ok.py", L4_OK_CLOCK, ["L4"]
    ) == []


def test_l4_ignores_bench_and_noncore(tmp_path):
    assert _lint_snippet(tmp_path, "core/bench/b.py", L4_BAD, ["L4"]) == []
    assert _lint_snippet(tmp_path, "workload/w.py", L4_BAD, ["L4"]) == []


# ----------------------------------------------------------------------
# L5 — public annotation coverage
# ----------------------------------------------------------------------
L5_BAD = """
    def lookup(key, default=None):
        return default

    class Store:
        def put(self, key: str, value):
            self._data[key] = value
"""

L5_OK = """
    def lookup(key: str, default: int | None = None) -> int | None:
        return default

    def _private(x):
        return x

    class Store:
        def put(self, key: str, value: bytes) -> None:
            self._data[key] = value
"""


def test_l5_fires_on_missing_annotations(tmp_path):
    violations = _lint_snippet(tmp_path, "storage/bad.py", L5_BAD, ["L5"])
    assert _rules_hit(violations) == {"L5"}
    messages = " ".join(violation.message for violation in violations)
    assert "lookup" in messages and "Store.put" in messages


def test_l5_accepts_annotated_and_private(tmp_path):
    assert _lint_snippet(tmp_path, "storage/ok.py", L5_OK, ["L5"]) == []


def test_l5_only_watches_gated_directories(tmp_path):
    assert _lint_snippet(tmp_path, "workload/bad.py", L5_BAD, ["L5"]) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_line_suppression_disables_named_rule(tmp_path):
    source = """
        def remark(pattern):
            pattern.ret.axis = None  # xmvrlint: disable=L2 -- test override
    """
    assert _lint_snippet(tmp_path, "core/x.py", source, ["L2"]) == []


def test_line_suppression_is_rule_specific(tmp_path):
    source = """
        def remark(pattern):
            pattern.ret.axis = None  # xmvrlint: disable=L4
    """
    violations = _lint_snippet(tmp_path, "core/x.py", source, ["L2"])
    assert _rules_hit(violations) == {"L2"}


def test_file_suppression(tmp_path):
    source = """
        # xmvrlint: disable-file=L2
        def remark(pattern):
            pattern.ret.axis = None
    """
    assert _lint_snippet(tmp_path, "core/x.py", source, ["L2"]) == []


def test_suppression_on_def_line_covers_method_rule(tmp_path):
    source = """
        class XMVRSystem:
            def rebuild(self):  # xmvrlint: disable=L1 -- fresh caches
                self._views = {}
    """
    assert _lint_snippet(tmp_path, "core/x.py", source, ["L1"]) == []


# ----------------------------------------------------------------------
# CLI: exit codes, JSON output, --fix
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "core" / "clean.py"
    clean.parent.mkdir(parents=True)
    clean.write_text("X = 1\n", encoding="utf-8")
    assert lint_main([str(clean)]) == EXIT_CLEAN

    dirty = tmp_path / "core" / "dirty.py"
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    assert lint_main([str(dirty), "--select", "L2"]) == EXIT_VIOLATIONS

    assert lint_main([str(tmp_path / "missing.py")]) == EXIT_ERROR
    assert lint_main([str(clean), "--select", "NOPE"]) == EXIT_ERROR
    capsys.readouterr()


def test_cli_json_output(tmp_path, capsys):
    dirty = tmp_path / "core" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    assert (
        lint_main([str(dirty), "--select", "L2", "--format", "json"])
        == EXIT_VIOLATIONS
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["violations"][0]["rule"] == "L2"
    assert payload["violations"][0]["line"] == 2


def test_cli_syntax_error_is_exit_2(tmp_path, capsys):
    broken = tmp_path / "core" / "broken.py"
    broken.parent.mkdir(parents=True)
    broken.write_text("def broken(:\n", encoding="utf-8")
    assert lint_main([str(broken)]) == EXIT_ERROR
    capsys.readouterr()


def test_fix_inserts_return_none(tmp_path, capsys):
    target = tmp_path / "storage" / "fixme.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            def reset(store: dict,
                      eager: bool = False):
                store.clear()

            def fetch(store: dict):
                return store
            """
        ),
        encoding="utf-8",
    )
    assert lint_main([str(target), "--select", "L5"]) == EXIT_VIOLATIONS
    assert lint_main([str(target), "--select", "L5", "--fix"]) == EXIT_VIOLATIONS
    rewritten = target.read_text(encoding="utf-8")
    # The procedure gained "-> None" (on the line holding the ':')...
    assert "eager: bool = False) -> None:" in rewritten
    # ...the value-returning function was left for a human.
    assert "def fetch(store: dict):" in rewritten
    # Idempotent: a second --fix run changes nothing.
    assert lint_main([str(target), "--select", "L5", "--fix"]) == EXIT_VIOLATIONS
    assert target.read_text(encoding="utf-8") == rewritten
    capsys.readouterr()


def test_fixed_file_still_parses_and_is_clean_for_fixable(tmp_path, capsys):
    target = tmp_path / "storage" / "proc.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "def reset(store: dict):\n    store.clear()\n", encoding="utf-8"
    )
    assert lint_main([str(target), "--select", "L5", "--fix"]) == EXIT_CLEAN
    assert "-> None" in target.read_text(encoding="utf-8")
    compile(target.read_text(encoding="utf-8"), str(target), "exec")
    capsys.readouterr()


# ----------------------------------------------------------------------
# the repo itself is clean
# ----------------------------------------------------------------------
def test_repo_source_tree_is_clean():
    src = Path(__file__).resolve().parent.parent / "src"
    assert src.is_dir()
    violations = lint_paths([src], all_rules(), root=src.parent)
    assert violations == [], engine.render_human(violations)
