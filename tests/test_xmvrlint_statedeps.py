"""Derived-state rules L15-L19: invalidation completeness, derivation
DAG shape, rebuild paths, hard-write scope, and annotation coverage.

Mirrors ``test_xmvrlint_concurrency.py``: true-positive fixtures
(seeded defects that must fire) and false-positive fixtures (compliant
code that must stay clean) per rule, a seeded-mutant battery against
the real annotated ``src/repro/core/system.py``, engine-enforced
suppression justifications, and the ``--graph`` DOT/JSON round trip.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import engine
from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    all_rules,
    build_project_context,
    lint_paths,
)
from repro.analysis.lintcli import (
    graph_payload,
    main as lint_main,
    render_graph_dot,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SYSTEM_PY = REPO_ROOT / "src" / "repro" / "core" / "system.py"


def _lint_snippet(tmp_path: Path, relpath: str, source: str, select=None):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], all_rules(select), root=tmp_path)


def _rules_hit(violations):
    return {violation.rule for violation in violations}


# ----------------------------------------------------------------------
# L15 — invalidation completeness
# ----------------------------------------------------------------------
L15_MISSING_PATCH = """
    class Table:
        def __init__(self):
            self.rows = []  #: state: hard
            #: state: soft(derived-from=rows; rebuild=refresh)
            self._summary = None

        def add(self, row):
            self.rows.append(row)

        def refresh(self):
            self._summary = len(self.rows)
"""

L15_INLINE_PATCH = """
    class Table:
        def __init__(self):
            self.rows = []  #: state: hard
            #: state: soft(derived-from=rows; rebuild=refresh)
            self._summary = None

        def add(self, row):
            self.rows.append(row)
            self._summary = None

        def refresh(self):
            self._summary = len(self.rows)
"""

L15_HELPER_PATCH = """
    class Table:
        def __init__(self):
            self.rows = []  #: state: hard
            #: state: soft(derived-from=rows; rebuild=refresh)
            self._summary = None

        def _invalidate(self):
            self._summary = None

        def add(self, row):
            self.rows.append(row)
            self._invalidate()

        def refresh(self):
            self._summary = len(self.rows)
"""

L15_ONE_BRANCH_MISSES = """
    class Table:
        def __init__(self):
            self.rows = []  #: state: hard
            #: state: soft(derived-from=rows; rebuild=refresh)
            self._summary = None

        def add(self, row, fast=False):
            self.rows.append(row)
            if fast:
                return
            self._summary = None

        def refresh(self):
            self._summary = len(self.rows)
"""

L15_RAISING_EXIT_EXEMPT = """
    class Table:
        def __init__(self):
            self.rows = []  #: state: hard
            #: state: soft(derived-from=rows; rebuild=refresh)
            self._summary = None

        def add(self, row):
            self.rows.append(row)
            raise RuntimeError("encode failed")

        def refresh(self):
            self._summary = len(self.rows)
"""

L15_WEAK_EDGE_EXEMPT = """
    class Table:
        def __init__(self):
            self.rows = []  #: state: hard
            #: state: soft(derived-from=rows?; rebuild=refresh)
            self._summary = None

        def add(self, row):
            self.rows.append(row)

        def refresh(self):
            self._summary = len(self.rows)
"""


def test_l15_fires_on_missing_invalidation(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L15_MISSING_PATCH, ["L15"]
    )
    assert _rules_hit(violations) == {"L15"}
    assert "neither invalidated nor patched" in violations[0].message


def test_l15_accepts_inline_patch(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L15_INLINE_PATCH, ["L15"]
    ) == []


def test_l15_credits_interprocedural_patch_helper(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L15_HELPER_PATCH, ["L15"]
    ) == []


def test_l15_fires_when_one_exit_path_misses(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L15_ONE_BRANCH_MISSES, ["L15"]
    )
    assert _rules_hit(violations) == {"L15"}


def test_l15_exempts_raising_exits(tmp_path):
    # Mutate-then-raise is L7's jurisdiction, not L15's.
    assert _lint_snippet(
        tmp_path, "core/t.py", L15_RAISING_EXIT_EXEMPT, ["L15"]
    ) == []


def test_l15_exempts_weak_edges(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L15_WEAK_EDGE_EXEMPT, ["L15"]
    ) == []


# ----------------------------------------------------------------------
# L16 — derivation shape: acyclicity and hard provenance
# ----------------------------------------------------------------------
L16_CYCLE = """
    class Thing:
        def __init__(self):
            #: state: soft(derived-from=_b; rebuild=fill)
            self._a = None
            #: state: soft(derived-from=_a; rebuild=fill)
            self._b = None

        def fill(self):
            self._a = 1
            self._b = 2
"""

L16_HARD_DERIVED = """
    class Thing:
        def __init__(self):
            self._a = 1  #: state: hard
            #: state: hard(derived-from=_a)
            self._b = 2
"""

L16_COUNTER_SOURCE = """
    class Thing:
        def __init__(self):
            self._hits = 0  #: state: counter
            #: state: soft(derived-from=_hits; rebuild=fill)
            self._cache = None

        def fill(self):
            self._cache = self._hits
"""

L16_UNRESOLVED_SOURCE = """
    class Thing:
        def __init__(self):
            #: state: soft(derived-from=_no_such_field; rebuild=fill)
            self._cache = None

        def fill(self):
            self._cache = 1
"""

L16_VALID_CHAIN = """
    class Thing:
        def __init__(self):
            self._base = []  #: state: hard
            #: state: soft(derived-from=_base; rebuild=fill)
            self._mid = None
            #: state: soft(derived-from=_mid; rebuild=fill)
            self._top = None

        def fill(self):
            self._mid = len(self._base)
            self._top = self._mid * 2
"""


def test_l16_fires_on_cycle(tmp_path):
    violations = _lint_snippet(tmp_path, "core/t.py", L16_CYCLE, ["L16"])
    assert _rules_hit(violations) == {"L16"}
    assert any("cycle" in v.message for v in violations)


def test_l16_fires_on_derived_hard_state(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L16_HARD_DERIVED, ["L16"]
    )
    assert _rules_hit(violations) == {"L16"}


def test_l16_fires_on_counter_source(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L16_COUNTER_SOURCE, ["L16"]
    )
    assert _rules_hit(violations) == {"L16"}
    assert "counter" in violations[0].message


def test_l16_fires_on_unresolvable_source(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L16_UNRESOLVED_SOURCE, ["L16"]
    )
    assert _rules_hit(violations) == {"L16"}


def test_l16_accepts_acyclic_chain(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L16_VALID_CHAIN, ["L16"]
    ) == []


# ----------------------------------------------------------------------
# L17 — rebuild-path existence
# ----------------------------------------------------------------------
L17_NO_REBUILD = """
    class Thing:
        def __init__(self):
            self._base = []  #: state: hard
            #: state: soft(derived-from=_base)
            self._cache = None
"""

L17_MISSING_REBUILD = """
    class Thing:
        def __init__(self):
            self._base = []  #: state: hard
            #: state: soft(derived-from=_base; rebuild=_no_such_fn)
            self._cache = None
"""

L17_UNREACHABLE_REBUILD = """
    class Thing:
        def __init__(self):
            self._base = []  #: state: hard
            #: state: soft(derived-from=_base; rebuild=_fill)
            self._cache = None

        def _fill(self):
            self._cache = len(self._base)
"""

L17_REACHABLE_REBUILD = """
    class Thing:
        def __init__(self):
            self._base = []  #: state: hard
            #: state: soft(derived-from=_base; rebuild=_fill)
            self._cache = None

        def _fill(self):
            self._cache = len(self._base)

        def lookup(self):
            if self._cache is None:
                self._fill()
            return self._cache
"""

L17_REBUILD_BY_RECONSTRUCTION = """
    class Index:
        def __init__(self, tree):
            self.tree = tree  #: state: hard
            #: state: soft(derived-from=tree; rebuild=__init__)
            self._by_label = {}
"""


def test_l17_fires_on_missing_rebuild_declaration(tmp_path):
    violations = _lint_snippet(tmp_path, "core/t.py", L17_NO_REBUILD, ["L17"])
    assert _rules_hit(violations) == {"L17"}


def test_l17_fires_on_unresolvable_rebuild(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L17_MISSING_REBUILD, ["L17"]
    )
    assert _rules_hit(violations) == {"L17"}


def test_l17_fires_on_unreachable_rebuild(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L17_UNREACHABLE_REBUILD, ["L17"]
    )
    assert _rules_hit(violations) == {"L17"}
    assert "unreachable" in violations[0].message


def test_l17_accepts_reachable_rebuild(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L17_REACHABLE_REBUILD, ["L17"]
    ) == []


def test_l17_accepts_rebuild_by_reconstruction(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L17_REBUILD_BY_RECONSTRUCTION, ["L17"]
    ) == []


# ----------------------------------------------------------------------
# L18 — hard-state write scope
# ----------------------------------------------------------------------
L18_UNSCOPED_WRITE = """
    class Thing:
        def __init__(self):
            self._doc = None  #: state: hard

        def poke(self, doc):
            self._doc = doc
"""

L18_MUTATOR_WRITE = """
    class Thing:
        def __init__(self):
            self._doc = None  #: state: hard

        #: state: mutator
        def replace(self, doc):
            self._doc = doc
"""

L18_HELPER_UNDER_MUTATOR = """
    class Thing:
        def __init__(self):
            self._doc = None  #: state: hard

        def _rebind(self, doc):
            self._doc = doc

        #: state: mutator
        def replace(self, doc):
            self._rebind(doc)
"""

L18_LIFECYCLE_WRITE = """
    class Thing:
        def __init__(self):
            self._doc = None  #: state: hard

        def close(self):
            self._doc = None
"""


def test_l18_fires_on_unscoped_hard_write(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L18_UNSCOPED_WRITE, ["L18"]
    )
    assert _rules_hit(violations) == {"L18"}
    assert "mutator" in violations[0].message


def test_l18_accepts_declared_mutator(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L18_MUTATOR_WRITE, ["L18"]
    ) == []


def test_l18_accepts_helper_reachable_from_mutator(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L18_HELPER_UNDER_MUTATOR, ["L18"]
    ) == []


def test_l18_accepts_lifecycle_writes(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L18_LIFECYCLE_WRITE, ["L18"]
    ) == []


# ----------------------------------------------------------------------
# L19 — annotation coverage on annotated classes
# ----------------------------------------------------------------------
L19_UNANNOTATED_ATTR = """
    class Thing:
        def __init__(self):
            self._doc = None  #: state: hard

        def stash(self):
            self._scratch = {}
"""

L19_FULLY_ANNOTATED = """
    class Thing:
        def __init__(self):
            self._doc = None  #: state: hard
            self._hits = 0  #: state: counter

        def bump(self):
            self._hits += 1
"""

L19_SUBSCRIPT_EXEMPT = """
    class Thing:
        def __init__(self):
            self._doc = {}  #: state: hard

        #: state: mutator
        def put(self, key, value):
            self._doc[key] = value
"""

L19_UNANNOTATED_CLASS_IGNORED = """
    class Plain:
        def __init__(self):
            self._anything = 1

        def poke(self):
            self._other = 2
"""


def test_l19_fires_on_unannotated_attribute(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/t.py", L19_UNANNOTATED_ATTR, ["L19"]
    )
    assert _rules_hit(violations) == {"L19"}
    assert "_scratch" in violations[0].message


def test_l19_accepts_fully_annotated_class(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L19_FULLY_ANNOTATED, ["L19"]
    ) == []


def test_l19_exempts_subscript_stores(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L19_SUBSCRIPT_EXEMPT, ["L19"]
    ) == []


def test_l19_ignores_classes_without_state_annotations(tmp_path):
    # Opt-in: only classes that declare state are held to coverage.
    assert _lint_snippet(
        tmp_path, "core/t.py", L19_UNANNOTATED_CLASS_IGNORED, ["L19"]
    ) == []


# ----------------------------------------------------------------------
# seeded mutants against the real annotated system.py
# ----------------------------------------------------------------------
SYSTEM_MUTANTS = {
    "L15": """\
    def mutant_poke(self, child):
        self.document.root = child
""",
    "L16": """\
    def mutant_derived(self):
        #: state: soft(derived-from=_plan_stats_base; rebuild=stats)
        self._mutant_cache = {}
""",
    "L17": """\
    def mutant_soft(self):
        #: state: soft(derived-from=document; rebuild=_no_such_rebuild)
        self._mutant_cache = {}
""",
    "L18": """\
    def mutant_rebind(self, doc):
        self.document = doc
""",
    "L19": """\
    def mutant_stash(self):
        self._scratch = {}
""",
}


def _lint_package_copy(tmp_path: Path, extra: str = ""):
    # The derivation DAG spans files (rebuild targets live in
    # maintenance.py / leaf_cover.py), so the mutant battery copies the
    # whole package, not just system.py.
    shutil.copytree(SYSTEM_PY.parent.parent, tmp_path / "repro")
    source = SYSTEM_PY.read_text(encoding="utf-8")
    target = tmp_path / "repro" / "core" / "system.py"
    target.write_text(source + "\n" + extra, encoding="utf-8")
    return lint_paths([tmp_path], all_rules(["L15-L19"]), root=tmp_path)


def _lint_system_copy(tmp_path: Path, extra: str):
    original_lines = SYSTEM_PY.read_text(encoding="utf-8").count("\n")
    return [
        v
        for v in _lint_package_copy(tmp_path, extra)
        if v.path.endswith("system.py") and v.line > original_lines
    ]


def test_unmutated_system_copy_is_clean(tmp_path):
    violations = _lint_package_copy(tmp_path)
    assert violations == [], engine.render_human(violations)


@pytest.mark.parametrize("rule_id", sorted(SYSTEM_MUTANTS))
def test_seeded_mutant_is_caught(tmp_path, rule_id):
    seeded = _lint_system_copy(tmp_path, SYSTEM_MUTANTS[rule_id])
    assert rule_id in _rules_hit(seeded), (
        f"{rule_id} missed its seeded mutant"
    )


# ----------------------------------------------------------------------
# suppression pragmas require a justification for L15-L19
# ----------------------------------------------------------------------
SUPPRESS_TEMPLATE = """
    class Thing:
        def __init__(self):
            self._doc = None  #: state: hard

        def stash(self):
            self._scratch = {{}}  {pragma}
"""


def test_bare_pragma_does_not_suppress_state_rules(tmp_path):
    violations = _lint_snippet(
        tmp_path,
        "core/t.py",
        SUPPRESS_TEMPLATE.format(pragma="# xmvrlint: disable=L19"),
        ["L19"],
    )
    assert _rules_hit(violations) == {"L19"}


def test_justified_pragma_suppresses_state_rules(tmp_path):
    assert _lint_snippet(
        tmp_path,
        "core/t.py",
        SUPPRESS_TEMPLATE.format(
            pragma="# xmvrlint: disable=L19 -- scratch, never read back"
        ),
        ["L19"],
    ) == []


# ----------------------------------------------------------------------
# --graph: derivation DAG + lock graph, DOT and JSON (satellite 1)
# ----------------------------------------------------------------------
GRAPH_SNIPPET = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            self._base = []  #: state: hard
            #: state: soft(derived-from=_base; rebuild=_fill)
            self._cache = None
            #: state: soft(derived-from=_base?; rebuild=_fill)
            self._hint = None

        def _fill(self):
            self._cache = len(self._base)

        def lookup(self):
            if self._cache is None:
                self._fill()
            return self._cache
"""


def _graph_for_snippet(tmp_path):
    target = tmp_path / "core" / "t.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(GRAPH_SNIPPET), encoding="utf-8")
    pctx = build_project_context([target], root=tmp_path)
    return graph_payload(pctx)


def test_graph_payload_round_trips_through_json(tmp_path):
    payload = _graph_for_snippet(tmp_path)
    assert json.loads(json.dumps(payload)) == payload
    derivation = payload["derivation"]
    nodes = {node["id"]: node["kind"] for node in derivation["nodes"]}
    assert nodes["Thing._base"] == "hard"
    assert nodes["Thing._cache"] == "soft"
    edges = {
        (edge["source"], edge["target"]): edge["weak"]
        for edge in derivation["edges"]
    }
    assert edges[("Thing._base", "Thing._cache")] is False
    assert edges[("Thing._base", "Thing._hint")] is True


def test_graph_dot_renders_every_edge(tmp_path):
    payload = _graph_for_snippet(tmp_path)
    dot = render_graph_dot(payload)
    assert dot.startswith("digraph xmvr_state {")
    assert '"Thing._base" [shape=box];' in dot
    assert '"Thing._cache" [shape=ellipse];' in dot
    assert '"Thing._base" -> "Thing._cache";' in dot
    # Weak edges render dashed.
    assert '"Thing._base" -> "Thing._hint" [style=dashed];' in dot
    derivation = payload["derivation"]
    assert dot.count("->") == len(derivation["edges"]) + len(
        payload["locks"]["edges"]
    )


def test_graph_cli_emits_parseable_json(tmp_path, capsys):
    target = tmp_path / "core" / "t.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(GRAPH_SNIPPET), encoding="utf-8")
    assert lint_main(["--graph", "json", "--no-cache", str(target)]) == (
        EXIT_CLEAN
    )
    payload = json.loads(capsys.readouterr().out)
    assert {"derivation", "locks"} <= set(payload)


def test_repo_graph_matches_committed_snapshot():
    # The committed DOT rendering must stay in sync with the tree:
    # regenerate with
    #   python -m repro lint --graph dot src/ > docs/derivation-graph.dot
    committed = (REPO_ROOT / "docs" / "derivation-graph.dot").read_text(
        encoding="utf-8"
    )
    src = REPO_ROOT / "src"
    pctx = build_project_context([src], root=REPO_ROOT)
    assert render_graph_dot(graph_payload(pctx)) == committed


# ----------------------------------------------------------------------
# --baseline-strict: stale entries fail the run (satellite 2)
# ----------------------------------------------------------------------
def test_baseline_strict_rejects_stale_entries(tmp_path, capsys):
    dirty = tmp_path / "core" / "d.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    baseline = tmp_path / "baseline.json"
    assert lint_main(
        [str(dirty), "--no-cache", "--write-baseline", str(baseline)]
    ) == EXIT_CLEAN
    # Baseline matches the tree: strict passes.
    assert lint_main(
        [
            str(dirty), "--no-cache",
            "--baseline", str(baseline), "--baseline-strict",
        ]
    ) == EXIT_CLEAN
    # The violation is fixed but the baseline still holds its slot:
    # strict must fail so the stale budget cannot mask a regression.
    dirty.write_text("def remark(p) -> None:\n    pass\n", encoding="utf-8")
    assert lint_main(
        [
            str(dirty), "--no-cache",
            "--baseline", str(baseline), "--baseline-strict",
        ]
    ) == EXIT_ERROR
    assert "stale baseline" in capsys.readouterr().err
    # Without --baseline-strict the stale entry is still tolerated.
    assert lint_main(
        [str(dirty), "--no-cache", "--baseline", str(baseline)]
    ) == EXIT_CLEAN


def test_baseline_strict_keeps_reporting_new_violations(tmp_path, capsys):
    dirty = tmp_path / "core" / "d.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    baseline = tmp_path / "baseline.json"
    assert lint_main(
        [str(dirty), "--no-cache", "--write-baseline", str(baseline)]
    ) == EXIT_CLEAN
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n"
        "def remark2(p):\n    p.ret.axis = None\n",
        encoding="utf-8",
    )
    assert lint_main(
        [
            str(dirty), "--no-cache",
            "--baseline", str(baseline), "--baseline-strict",
        ]
    ) == EXIT_VIOLATIONS
    capsys.readouterr()
