"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmltree import parse_xml, parse_xml_file, serialize


class TestBasicParsing:
    def test_single_element(self):
        tree = parse_xml("<a/>")
        assert tree.root.label == "a"
        assert tree.root.is_leaf()

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c/></b><d/></a>")
        assert [n.label for n in tree.iter_nodes()] == list("abcd")

    def test_text_content(self):
        tree = parse_xml("<a>hello world</a>")
        assert tree.root.text == "hello world"

    def test_text_is_stripped(self):
        tree = parse_xml("<a>\n  spaced  \n</a>")
        assert tree.root.text == "spaced"

    def test_empty_element_has_no_text(self):
        tree = parse_xml("<a></a>")
        assert tree.root.text is None

    def test_attributes_double_and_single_quotes(self):
        tree = parse_xml("""<a id="1" name='x y'/>""")
        assert tree.root.attributes == {"id": "1", "name": "x y"}

    def test_attribute_entities(self):
        tree = parse_xml('<a v="&lt;&amp;&gt;"/>')
        assert tree.root.attributes["v"] == "<&>"

    def test_text_entities(self):
        tree = parse_xml("<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</a>")
        assert tree.root.text == "<tag> & \"x\" 'y'"

    def test_numeric_character_references(self):
        tree = parse_xml("<a>&#65;&#x42;</a>")
        assert tree.root.text == "AB"

    def test_comment_skipped(self):
        tree = parse_xml("<a><!-- comment <b/> --><c/></a>")
        assert [n.label for n in tree.iter_nodes()] == ["a", "c"]

    def test_processing_instruction_skipped(self):
        tree = parse_xml("<?xml version='1.0'?><a/>")
        assert tree.root.label == "a"

    def test_doctype_skipped(self):
        tree = parse_xml("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>")
        assert tree.root.label == "a"

    def test_cdata_becomes_text(self):
        tree = parse_xml("<a><![CDATA[<raw> & text]]></a>")
        assert tree.root.text == "<raw> & text"

    def test_mixed_children_and_text(self):
        tree = parse_xml("<a>pre<b/>post</a>")
        assert tree.root.text == "prepost"
        assert len(tree.root.children) == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "document",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "</a>",
            "<a/><b/>",
            "<a><b></a></b>",
            "<a attr=></a>",
            "<a attr='x' attr='y'/>",
            "<a>&unknown;</a>",
            "<a>&brokenentity</a>",
            "<!-- unterminated",
            "<a><![CDATA[open</a>",
            "<1tag/>",
        ],
    )
    def test_malformed_documents_raise(self, document):
        with pytest.raises(XMLParseError):
            parse_xml(document)

    def test_error_carries_position(self):
        try:
            parse_xml("<a><b></c></a>")
        except XMLParseError as error:
            assert error.position is not None
        else:  # pragma: no cover
            pytest.fail("expected XMLParseError")


class TestRoundTrip:
    def test_serialize_then_parse_is_identity(self):
        document = (
            '<site a="1"><x>text &amp; more</x><y id="2"><z/></y></site>'
        )
        tree = parse_xml(document)
        again = parse_xml(serialize(tree))
        assert tree.root.structurally_equal(again.root)

    def test_pretty_print_round_trips(self):
        tree = parse_xml("<a><b>bee</b><c d='e'/></a>")
        again = parse_xml(serialize(tree, indent=2))
        assert tree.root.structurally_equal(again.root)

    def test_parse_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b/></a>", encoding="utf-8")
        tree = parse_xml_file(str(path))
        assert tree.size() == 2


class TestLargeDocuments:
    def test_deep_nesting_no_recursion_limit(self):
        depth = 5000
        document = "<a>" * depth + "</a>" * depth
        tree = parse_xml(document)
        assert tree.size() == depth

    def test_wide_document(self):
        document = "<a>" + "<b/>" * 2000 + "</a>"
        tree = parse_xml(document)
        assert len(tree.root.children) == 2000
