"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def book_xml(tmp_path):
    path = tmp_path / "book.xml"
    path.write_text(
        "<b><t/><a/><s><t/><p/><f><i/></f></s>"
        "<s><t/><p/><s><t/><p/><f><i/></f></s></s></b>",
        encoding="utf-8",
    )
    return str(path)


@pytest.fixture
def views_file(tmp_path):
    path = tmp_path / "views.txt"
    path.write_text(
        "# the paper's views\nV1 s[t]/p\nV4 s[p]/f\n", encoding="utf-8"
    )
    return str(path)


class TestGenerate:
    def test_writes_document(self, tmp_path, capsys):
        output = str(tmp_path / "doc.xml")
        assert main(["generate", output, "--scale", "0.05"]) == 0
        text = open(output).read()
        assert text.startswith("<?xml")
        assert "<site>" in text
        assert "elements" in capsys.readouterr().out

    def test_pretty(self, tmp_path):
        output = str(tmp_path / "doc.xml")
        assert main(["generate", output, "--scale", "0.05", "--pretty"]) == 0
        assert "\n <regions>" in open(output).read()


class TestAnswer:
    def test_answer_with_check(self, book_xml, capsys):
        code = main([
            "answer", "s[f//i][t]/p",
            "--document", book_xml,
            "--view", "V1=s[t]/p",
            "--view", "V4=s[p]/f",
            "--check",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "direct-evaluation check: OK" in out
        assert "V1" in out and "V4" in out

    def test_answer_strategies(self, book_xml):
        for strategy in ("HV", "MV", "MN", "CB"):
            code = main([
                "answer", "//s[t]/p",
                "--document", book_xml,
                "--view", "V1=s[t]/p",
                "--strategy", strategy,
                "--check",
            ])
            assert code == 0

    def test_views_file(self, book_xml, views_file, capsys):
        code = main([
            "answer", "s[f//i][t]/p",
            "--document", book_xml,
            "--views", views_file,
            "--check",
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_unanswerable_reports_error(self, book_xml, capsys):
        code = main([
            "answer", "//a//zzz",
            "--document", book_xml,
            "--view", "V1=s[t]/p",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_limit_truncates(self, book_xml, capsys):
        code = main([
            "answer", "//s/p",
            "--document", book_xml,
            "--view", "V=//s/p",
            "--limit", "1",
        ])
        assert code == 0
        assert "more" in capsys.readouterr().out


class TestFilterAndExplain:
    def test_filter(self, capsys):
        code = main([
            "filter", "s[f//i][t]/p",
            "--view", "V1=s[t]/p",
            "--view", "V3=s//*/t",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "candidates (1): ['V1']" in out
        assert "LIST(" in out

    def test_explain(self, capsys):
        code = main([
            "explain", "s[f//i][t]/p",
            "--view", "V1=s[t]/p",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "obligations:" in out
        assert "LC(V1" in out

    def test_bad_view_option(self):
        with pytest.raises(SystemExit):
            main(["filter", "//a", "--view", "missing-equals"])

    def test_no_views(self):
        with pytest.raises(SystemExit):
            main(["filter", "//a"])

    def test_bad_views_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only-one-token\n")
        with pytest.raises(SystemExit):
            main(["filter", "//a", "--views", str(path)])

    def test_bad_query_reports_error(self, capsys):
        code = main(["filter", "//a[", "--view", "V=//a"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
