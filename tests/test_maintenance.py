"""Tests for view maintenance under base-document updates."""

import random

import pytest

from repro import MaterializedViewSystem, encode_tree
from repro.delta import DocumentEditor
from repro.errors import EncodingError
from repro.xmltree import XMLNode, build_tree

from conftest import random_pattern, random_tree


def _book_system():
    doc = encode_tree(build_tree(
        ("b", ["t", ("s", ["t", "p"]), ("s", ["t", "p", ("f", ["i"])])])
    ))
    system = MaterializedViewSystem(doc)
    system.register_view("V1", "//s[t]/p")
    system.register_view("V2", "//s[f//i]/p")
    system.register_view("VT", "//b/t")
    return system


class TestInsert:
    def test_insert_updates_answers(self):
        system = _book_system()
        editor = DocumentEditor(system)
        before = system.answer("//s[f//i]/p").codes
        assert len(before) == 1
        # give the first section a figure with an image
        first_s = system.document.tree.root.children[1]
        figure = XMLNode("f")
        figure.new_child("i")
        report = editor.insert_subtree(first_s.dewey, figure)
        assert "V2" in report.affected_views
        after = system.answer("//s[f//i]/p")
        assert after.codes == system.direct_codes("//s[f//i]/p")
        assert len(after.codes) == 2

    def test_unrelated_views_skipped(self):
        system = _book_system()
        editor = DocumentEditor(system)
        first_s = system.document.tree.root.children[1]
        figure = XMLNode("f")
        figure.new_child("i")
        report = editor.insert_subtree(first_s.dewey, figure)
        # VT (//b/t) matches neither f nor i, and no t-fragment contains
        # the insertion point.
        assert "VT" in report.skipped_views

    def test_fragment_content_refresh_without_answer_change(self):
        """Inserting below an existing answer must refresh that view's
        fragments even though its answer set is unchanged."""
        system = _book_system()
        editor = DocumentEditor(system)
        p_code = system.answer("//s[t]/p").codes[0]
        report = editor.insert_subtree(p_code, XMLNode("t"))
        assert "V1" in report.affected_views  # fragment grew
        # the compensating query //s[t]/p[t] now matches via fragments
        assert system.direct_codes("//s[t]/p[t]") == [p_code]
        outcome = system.try_answer("//s[t]/p[t]")
        assert outcome is not None and outcome.codes == [p_code]

    def test_existing_codes_stable_on_schema_compatible_insert(self):
        system = _book_system()
        editor = DocumentEditor(system)
        codes_before = {
            id(n): n.dewey for n in system.document.tree.iter_nodes()
        }
        first_s = system.document.tree.root.children[1]
        editor.insert_subtree(first_s.dewey, XMLNode("p"))
        for node in system.document.tree.iter_nodes():
            if id(node) in codes_before:
                assert node.dewey == codes_before[id(node)]

    def test_schema_violating_insert_reencodes(self):
        system = _book_system()
        editor = DocumentEditor(system)
        first_s = system.document.tree.root.children[1]
        report = editor.insert_subtree(first_s.dewey, XMLNode("zzz"))
        assert report.full_reencode
        # new label usable in queries afterwards
        assert len(system.direct_codes("//s/zzz")) == 1
        for node in system.document.tree.iter_nodes():
            assert system.document.fst.decode(node.dewey) == node.label_path()

    def test_insert_after_uncoded_sibling(self):
        """Regression: an uncoded sibling (a node attached directly to
        the tree, never encoded) used to be indexed for its dewey code
        (``siblings[-2].dewey[-1]`` → TypeError).  Component assignment
        must skip uncoded siblings instead."""
        system = _book_system()
        editor = DocumentEditor(system)
        first_s = system.document.tree.root.children[1]
        stray = XMLNode("p")
        first_s.add_child(stray)  # out-of-band: no editor, no code
        system.document.tree.invalidate_indexes()

        inserted = XMLNode("p")
        editor.insert_subtree(first_s.dewey, inserted)
        assert stray.dewey is None
        assert inserted.dewey is not None
        # The new code decodes to the right label path and does not
        # collide with any existing sibling's code.
        fst = system.document.fst
        assert fst.decode(inserted.dewey) == inserted.label_path()
        coded = [c.dewey for c in first_s.children if c.dewey is not None]
        assert len(coded) == len(set(coded))

    def test_bad_parent_code(self):
        system = _book_system()
        with pytest.raises(EncodingError):
            DocumentEditor(system).insert_subtree((9, 9, 9), XMLNode("x"))

    def test_attached_subtree_rejected(self):
        system = _book_system()
        child = system.document.tree.root.children[0]
        with pytest.raises(ValueError):
            DocumentEditor(system).insert_subtree((0,), child)


class TestDelete:
    def test_delete_updates_answers(self):
        system = _book_system()
        editor = DocumentEditor(system)
        figure = system.direct_codes("//s/f")[0]
        report = editor.delete_subtree(figure)
        assert "V2" in report.affected_views
        assert system.direct_codes("//s[f//i]/p") == []
        outcome = system.try_answer("//s[f//i]/p")
        assert outcome is not None and outcome.codes == []

    def test_delete_root_rejected(self):
        system = _book_system()
        with pytest.raises(ValueError):
            DocumentEditor(system).delete_subtree((0,))

    def test_missing_code_rejected(self):
        system = _book_system()
        with pytest.raises(EncodingError):
            DocumentEditor(system).delete_subtree((0, 99))

    def test_baseline_indexes_refreshed(self):
        system = _book_system()
        editor = DocumentEditor(system)
        system.answer_bn("//s/p")  # build BN
        target = system.direct_codes("//s/p")[0]
        editor.delete_subtree(target)
        truth = system.direct_codes("//s/p")
        assert system.answer_bn("//s/p").codes == truth
        assert system.answer_bf("//s/p").codes == truth


class TestRandomizedMaintenance:
    @pytest.mark.parametrize("seed", range(10))
    def test_answers_stay_correct_under_edits(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=25, max_depth=4)
        system = MaterializedViewSystem(encode_tree(tree))
        for index in range(5):
            system.register_view(f"v{index}", random_pattern(rng, max_nodes=4))
        editor = DocumentEditor(system)

        for _ in range(4):
            nodes = list(system.document.tree.iter_nodes())
            if rng.random() < 0.6 or len(nodes) < 4:
                parent = rng.choice(nodes)
                child = XMLNode(rng.choice("abcde"))
                if rng.random() < 0.4:
                    child.new_child(rng.choice("abcde"))
                editor.insert_subtree(parent.dewey, child)
            else:
                victim = rng.choice(
                    [n for n in nodes if n.parent is not None]
                )
                editor.delete_subtree(victim.dewey)

            query = random_pattern(rng, max_nodes=4)
            truth = system.direct_codes(query)
            outcome = system.try_answer(query, "HV")
            if outcome is not None:
                assert outcome.codes == truth
            for view in system.materialized_views():
                # every materialized view's fragments reflect the data
                stored = set(system.fragments.codes(view.view_id))
                from repro.matching import evaluate as evaluate_

                fresh = {
                    n.dewey
                    for n in evaluate_(view.pattern, system.document.tree)
                }
                assert stored == fresh, view.to_xpath()


class TestMemoCarryOver:
    """Epoch-swap carry-over: registration keeps CoverageMemo entries
    for untouched views; maintenance evicts exactly the touched ones."""

    def test_registration_keeps_existing_entries(self):
        system = _book_system()
        system.answer("//s[t]/p")  # populate memo for V1/V2/VT
        computed_before = system._memo.stats()["coverage_computed"]
        system.register_view("V3", "//b//p")
        system.answer("//s[t]/p")
        stats = system._memo.stats()
        # the new epoch's cold derivation re-used every cached pair of
        # the pre-registration views: only the new view computes
        assert stats["coverage_evicted"] == 0
        recomputed = stats["coverage_computed"] - computed_before
        assert recomputed <= 1  # at most V3's fresh pair
        assert stats["coverage_served"] > 0

    def test_maintenance_evicts_touched_views_only(self):
        system = _book_system()
        editor = DocumentEditor(system)
        system.answer("//s[t]/p")
        from repro.xpath import parse_xpath

        query_key = parse_xpath("//s[t]/p").canonical_string()
        query_slot = system._memo._queries[query_key]
        assert "V1" in query_slot.units
        cached_before = dict(query_slot.units)
        # grow a fragment of V1: insert below one of its stored answers
        p_code = system.answer("//s[t]/p").codes[0]
        report = editor.insert_subtree(p_code, XMLNode("t"))
        assert "V1" in report.affected_views
        stats = system._memo.stats()
        assert stats["coverage_evicted"] > 0
        # touched views' entries are gone, untouched views keep theirs
        for view_id in report.affected_views:
            assert view_id not in query_slot.units
        for view_id in report.skipped_views:
            if view_id in cached_before:
                assert query_slot.units[view_id] is cached_before[view_id]
        # and answers stay correct afterwards
        assert system.answer("//s[t]/p").codes == system.direct_codes(
            "//s[t]/p"
        )
