"""Unit tests for the XML tree model."""

import pytest

from repro.xmltree import XMLNode, XMLTree, build_tree


class TestXMLNode:
    def test_requires_label(self):
        with pytest.raises(ValueError):
            XMLNode("")

    def test_add_child_sets_parent(self):
        parent = XMLNode("a")
        child = parent.new_child("b")
        assert child.parent is parent
        assert parent.children == [child]

    def test_add_child_rejects_attached_node(self):
        parent = XMLNode("a")
        child = parent.new_child("b")
        other = XMLNode("c")
        with pytest.raises(ValueError):
            other.add_child(child)

    def test_detach(self):
        parent = XMLNode("a")
        child = parent.new_child("b")
        child.detach()
        assert child.parent is None
        assert parent.children == []

    def test_depth_and_ancestors(self):
        tree = build_tree(("a", [("b", [("c", ["d"])])]))
        d = tree.root.children[0].children[0].children[0]
        assert d.depth() == 3
        assert [n.label for n in d.ancestors()] == ["c", "b", "a"]
        assert [n.label for n in d.ancestors_or_self()] == ["d", "c", "b", "a"]

    def test_ancestry_predicates(self):
        tree = build_tree(("a", [("b", ["c"]), "d"]))
        a = tree.root
        b = a.children[0]
        c = b.children[0]
        d = a.children[1]
        assert a.is_ancestor_of(c)
        assert not c.is_ancestor_of(a)
        assert not b.is_ancestor_of(d)
        assert b.is_ancestor_or_self_of(b)
        assert not b.is_ancestor_of(b)

    def test_label_path(self):
        tree = build_tree(("a", [("b", ["c"])]))
        c = tree.root.children[0].children[0]
        assert c.label_path() == ("a", "b", "c")

    def test_iter_subtree_document_order(self):
        tree = build_tree(("a", [("b", ["c", "d"]), "e"]))
        assert [n.label for n in tree.root.iter_subtree()] == list("abcde")

    def test_iter_descendants_skips_self(self):
        tree = build_tree(("a", ["b"]))
        assert [n.label for n in tree.root.iter_descendants()] == ["b"]

    def test_find_children(self):
        tree = build_tree(("a", ["b", "c", "b"]))
        assert len(tree.root.find_children("b")) == 2
        assert tree.root.find_children("z") == []

    def test_subtree_size(self):
        tree = build_tree(("a", [("b", ["c"]), "d"]))
        assert tree.root.subtree_size() == 4
        assert tree.root.children[0].subtree_size() == 2

    def test_structural_equality_is_unordered(self):
        first = build_tree(("a", ["b", ("c", ["d"])])).root
        second = build_tree(("a", [("c", ["d"]), "b"])).root
        assert first.structurally_equal(second)

    def test_structural_equality_detects_difference(self):
        first = build_tree(("a", ["b", "b"])).root
        second = build_tree(("a", ["b", "c"])).root
        assert not first.structurally_equal(second)

    def test_structural_equality_multiset_children(self):
        # Two b's vs one b + one c with swapped multiplicity.
        first = build_tree(("a", [("b", ["x"]), ("b", [])])).root
        second = build_tree(("a", [("b", []), ("b", ["x"])])).root
        assert first.structurally_equal(second)

    def test_canonical_signature_matches_structural_equality(self):
        first = build_tree(("a", ["b", ("c", ["d"])])).root
        second = build_tree(("a", [("c", ["d"]), "b"])).root
        third = build_tree(("a", ["b", ("c", ["e"])])).root
        assert first.canonical_signature() == second.canonical_signature()
        assert first.canonical_signature() != third.canonical_signature()

    def test_text_and_attributes_in_equality(self):
        first = XMLNode("a", text="x", attributes={"k": "1"})
        second = XMLNode("a", text="x", attributes={"k": "1"})
        third = XMLNode("a", text="y", attributes={"k": "1"})
        assert first.structurally_equal(second)
        assert not first.structurally_equal(third)


class TestXMLTree:
    def test_root_must_be_detached(self):
        parent = XMLNode("a")
        child = parent.new_child("b")
        with pytest.raises(ValueError):
            XMLTree(child)

    def test_size_height_labels(self):
        tree = build_tree(("a", [("b", ["c"]), "d"]))
        assert tree.size() == 4
        assert tree.height() == 2
        assert tree.labels() == frozenset("abcd")

    def test_bfs_order(self):
        tree = build_tree(("a", [("b", ["d"]), ("c", ["e"])]))
        assert [n.label for n in tree.iter_bfs()] == list("abcde")

    def test_label_index_and_invalidation(self):
        tree = build_tree(("a", ["b", "b"]))
        assert len(tree.nodes_with_label("b")) == 2
        tree.root.new_child("b")
        # Stale until invalidated.
        assert len(tree.nodes_with_label("b")) == 2
        tree.invalidate_indexes()
        assert len(tree.nodes_with_label("b")) == 3

    def test_select(self):
        tree = build_tree(("a", ["b", ("c", ["b"])]))
        found = tree.select(lambda n: n.label == "b")
        assert len(found) == 2

    def test_node_at_with_dewey(self, book_doc):
        tree = book_doc.tree
        for node in tree.iter_nodes():
            assert tree.node_at(node.dewey) is node
        assert tree.node_at((0, 99)) is None
        assert tree.node_at((1,)) is None


class TestBuildTree:
    def test_leaf_shorthand(self):
        tree = build_tree("a")
        assert tree.root.label == "a"
        assert tree.root.is_leaf()

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            build_tree(("a", ["b"], "extra"))
        with pytest.raises(ValueError):
            build_tree(123)
