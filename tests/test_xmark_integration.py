"""End-to-end integration over the XMark workload (slow-ish, realistic)."""

import pytest

from repro.bench.workloads import SEED_VIEWS, TEST_QUERIES
from repro.core.system import MaterializedViewSystem
from repro.workload import (
    QueryGenConfig,
    QueryGenerator,
    generate_positive,
    generate_xmark_document,
)


@pytest.fixture(scope="module")
def xmark_system():
    document = generate_xmark_document(scale=0.5, seed=42)
    system = MaterializedViewSystem(document)
    for view_id, expression in SEED_VIEWS.items():
        system.register_view(view_id, expression)
    generator = QueryGenerator(
        document.schema,
        QueryGenConfig(max_depth=4, prob_wild=0.2, prob_desc=0.2,
                       num_pred=0, num_nestedpath=1),
        seed=42,
    )
    for index, pattern in enumerate(
        generate_positive(generator, document.tree, 60)
    ):
        system.register_view(f"G{index}", pattern)
    return system


class TestTableIIIQueries:
    @pytest.mark.parametrize("query_id", list(TEST_QUERIES))
    @pytest.mark.parametrize("strategy", ["HV", "MV", "CB"])
    def test_all_strategies_correct(self, xmark_system, query_id, strategy):
        expression, _expected = TEST_QUERIES[query_id]
        truth = xmark_system.direct_codes(expression)
        outcome = xmark_system.answer(expression, strategy)
        assert outcome.codes == truth
        assert truth, "test query should have answers"

    @pytest.mark.parametrize("query_id", list(TEST_QUERIES))
    def test_expected_view_counts(self, xmark_system, query_id):
        expression, expected = TEST_QUERIES[query_id]
        outcome = xmark_system.answer(expression, "MV")
        assert len(outcome.view_ids) == expected

    @pytest.mark.parametrize("query_id", list(TEST_QUERIES))
    def test_baselines_agree(self, xmark_system, query_id):
        expression, _ = TEST_QUERIES[query_id]
        truth = xmark_system.direct_codes(expression)
        assert xmark_system.answer_bn(expression).codes == truth
        assert xmark_system.answer_bf(expression).codes == truth
        assert xmark_system.answer_tj(expression).codes == truth


class TestGeneratedWorkload:
    def test_generated_views_answer_themselves(self, xmark_system):
        """Every materialized generated view, posed as a query, is
        answered equivalently (often by itself)."""
        checked = 0
        for view in xmark_system.materialized_views()[:25]:
            if not view.view_id.startswith("G"):
                continue
            outcome = xmark_system.try_answer(view.pattern, "HV")
            assert outcome is not None, view.to_xpath()
            assert outcome.codes == xmark_system.direct_codes(view.pattern)
            checked += 1
        assert checked >= 10

    def test_random_queries_sound(self, xmark_system):
        """Generated probe queries: whenever answerable, the answer is
        exact; contained rewriting is always a lower bound."""
        generator = QueryGenerator(
            xmark_system.document.schema,
            QueryGenConfig(max_depth=4, prob_wild=0.1, prob_desc=0.3,
                           num_pred=0, num_nestedpath=1),
            seed=777,
        )
        answered = 0
        for pattern in generator.generate_many(40):
            truth = xmark_system.direct_codes(pattern)
            outcome = xmark_system.try_answer(pattern, "HV")
            if outcome is not None:
                assert outcome.codes == truth
                answered += 1
            contained = xmark_system.answer_contained(pattern)
            assert set(contained.codes) <= set(truth)
        assert answered >= 3

    def test_lookup_faster_than_mn(self, xmark_system):
        """Sanity on the Figure 9 claim at test scale: HV lookup beats
        MN lookup for a multi-view query."""
        expression, _ = TEST_QUERIES["Q4"]
        hv = xmark_system.answer(expression, "HV")
        mn = xmark_system.answer(expression, "MN")
        assert hv.lookup_seconds < mn.lookup_seconds

    def test_explain_matches_answer(self, xmark_system):
        from repro.core import explain_query
        from repro.xpath import parse_xpath

        expression, _ = TEST_QUERIES["Q2"]
        explanation = explain_query(xmark_system, parse_xpath(expression))
        assert explanation.answerable
        outcome = xmark_system.answer(expression, "HV")
        assert sorted(explanation.selections["HV"]) == sorted(outcome.view_ids)
