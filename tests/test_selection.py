"""Tests for multiple-view selection: MN/MV exhaustive and HV heuristic."""

import pytest

from repro.core import VFilter, View, select_heuristic, select_minimum
from repro.core.leaf_cover import coverage_units, covers_query
from repro.errors import ViewNotAnswerableError
from repro.xpath import parse_xpath


def _views(*expressions):
    return [View.from_xpath(f"V{i}", e) for i, e in enumerate(expressions)]


def _heuristic(views, query, size_of=None):
    vfilter = VFilter()
    vfilter.add_views(views)
    result = vfilter.filter(query)
    lookup = {view.view_id: view for view in views}
    return select_heuristic(result, lookup.__getitem__, query, size_of)


class TestSelectMinimum:
    def test_single_equivalent_view_wins(self):
        query = parse_xpath("//a[b]/c")
        views = _views("//a[b]/c", "//a/c", "//a[b]")
        selection = select_minimum(views, query)
        assert selection.view_ids == ["V0"]

    def test_two_view_minimum(self):
        query = parse_xpath("s[f//i][t]/p")
        views = _views("s[t]/p", "s[p]/f", "//s//t")
        selection = select_minimum(views, query)
        assert sorted(selection.view_ids) == ["V0", "V1"]

    def test_three_view_minimum(self):
        query = parse_xpath("//a[b][c][d]/e")
        views = _views("//a[b]/e", "//a[c]/e", "//a[d]/e")
        selection = select_minimum(views, query)
        assert len(selection.views) == 3

    def test_prefers_fewer_views_over_sizes(self):
        query = parse_xpath("//a[b][c]/e")
        views = _views("//a[b][c]/e", "//a[b]/e", "//a[c]/e")
        sizes = {"V0": 1000, "V1": 1, "V2": 1}
        selection = select_minimum(views, query, sizes.__getitem__)
        assert selection.view_ids == ["V0"]

    def test_size_breaks_ties(self):
        query = parse_xpath("//a[b]/e")
        views = _views("//a[b]/e", "//a[b]/e")
        sizes = {"V0": 1000, "V1": 10}
        selection = select_minimum(views, query, sizes.__getitem__)
        assert selection.view_ids == ["V1"]

    def test_unanswerable_reports_uncovered(self):
        query = parse_xpath("s[f//i][t]/p")
        views = _views("s[t]/p")
        with pytest.raises(ViewNotAnswerableError) as info:
            select_minimum(views, query)
        assert {str(o) for o in info.value.uncovered} == {"i"}

    def test_delta_required(self):
        query = parse_xpath("//a[b]/c")
        # covers leaves but no view returns c or an ancestor
        views = _views("//a[c]/b")
        with pytest.raises(ViewNotAnswerableError):
            select_minimum(views, query)

    def test_no_views_at_all(self):
        with pytest.raises(ViewNotAnswerableError):
            select_minimum([], parse_xpath("//a"))

    def test_selection_units_cover_query(self):
        query = parse_xpath("s[f//i][t]/p")
        views = _views("s[t]/p", "s[p]/f")
        selection = select_minimum(views, query)
        assert covers_query(selection.units, query)
        assert selection.delta_units()


class TestSelectHeuristic:
    def test_matches_paper_example_4_3(self):
        query = parse_xpath("s[f//i][t]/p")
        views = [
            View.from_xpath("V1", "s[t]/p"),
            View.from_xpath("V2", "s[.//f]/p"),
            View.from_xpath("V3", "s//*/t"),
            View.from_xpath("V4", "s[p]/f"),
        ]
        selection = _heuristic(views, query)
        assert sorted(selection.view_ids) == ["V1", "V4"]

    def test_returns_minimal_set(self):
        """The heuristic result must be minimal: no proper subset of it
        answers the query."""
        query = parse_xpath("//a[b][c][d]/e")
        views = _views("//a[b][c]/e", "//a[c][d]/e", "//a[b]/e", "//a[d]/e")
        selection = _heuristic(views, query)
        assert covers_query(selection.units, query)
        for dropped in selection.views:
            remaining = [v for v in selection.views if v is not dropped]
            units = [
                unit
                for view in remaining
                for unit in coverage_units(view, query)
            ]
            assert not covers_query(units, query)

    def test_prefers_longer_paths(self):
        """LIST(P_i) ordering: the deeper view is tried first (its
        fragments are smaller)."""
        query = parse_xpath("//a/b/c")
        views = _views("//c", "//a/b/c")
        selection = _heuristic(views, query)
        assert selection.view_ids == ["V1"]

    def test_ensures_delta_provider(self):
        query = parse_xpath("//a[b]/c")
        # V0 covers leaf b and c via implication but returns b;
        # V1 returns c (delta) only.
        views = _views("//a[c]/b", "//a/c")
        selection = _heuristic(views, query)
        assert covers_query(selection.units, query)
        assert any(unit.provides_delta for unit in selection.units)

    def test_unanswerable(self):
        query = parse_xpath("s[f//i][t]/p")
        views = _views("s[t]/p")
        with pytest.raises(ViewNotAnswerableError):
            _heuristic(views, query)

    def test_redundant_views_removed(self):
        query = parse_xpath("//a[b]/c")
        views = _views("//a[b]/c", "//a/c", "//a[b]/*")
        selection = _heuristic(views, query)
        assert len(selection.views) == 1

    def test_attribute_obligation_selected(self):
        query = parse_xpath("//a[@id='7'][b]/c")
        views = _views("//a[@id='7']/c", "//a[b]/c")
        selection = _heuristic(views, query)
        assert covers_query(selection.units, query)
        assert len(selection.views) == 2


class TestStrategyAgreement:
    def test_minimum_never_larger_than_heuristic(self):
        query = parse_xpath("//a[b][c]/e")
        views = _views("//a[b][c]/e", "//a[b]/e", "//a[c]/e", "//e")
        minimum = select_minimum(views, query)
        heuristic = _heuristic(views, query)
        assert len(minimum.views) <= len(heuristic.views)
