"""Property tests for the VFILTER NFA against path-pattern relations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AcceptEntry, PathNFA
from repro.matching import contains, has_homomorphism
from repro.xpath import Axis, PathPattern, Step, WILDCARD, normalize, str_tokens
from repro.xpath.pattern import TreePattern

LABELS = list("abc")


def random_path(rng: random.Random, max_steps: int = 4) -> PathPattern:
    steps = tuple(
        Step(
            rng.choice([Axis.CHILD, Axis.DESCENDANT]),
            rng.choice(LABELS + [WILDCARD]),
        )
        for _ in range(rng.randint(1, max_steps))
    )
    return PathPattern(steps)


def nfa_for(path: PathPattern) -> PathNFA:
    nfa = PathNFA()
    nfa.insert(normalize(path), AcceptEntry("v", 0, path.length))
    return nfa


def accepts(view_path: PathPattern, probe: PathPattern) -> bool:
    if all(step.is_wildcard for step in view_path.steps):
        # the all-wildcard side registry's rule
        return probe.length >= view_path.length
    return bool(nfa_for(view_path).read(str_tokens(probe)))


@settings(max_examples=300, deadline=None)
@given(st.integers(0, 10**9))
def test_nfa_never_misses_homomorphism(seed):
    """hom(view → probe) ⟹ NFA acceptance (the filter's soundness)."""
    rng = random.Random(seed)
    view_path = random_path(rng)
    probe = random_path(rng)
    if has_homomorphism(
        view_path.to_tree_pattern(), probe.to_tree_pattern()
    ):
        assert accepts(view_path, probe), (
            view_path.to_xpath(), probe.to_xpath()
        )


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 10**9))
def test_nfa_never_misses_containment(seed):
    """Stronger: probe ⊑ view (exact containment) ⟹ NFA acceptance.

    The gap-unit construction is complete even for the containment
    cases homomorphism misses (wildcard degeneracies)."""
    rng = random.Random(seed)
    view_path = random_path(rng, max_steps=3)
    probe = random_path(rng, max_steps=3)
    if contains(probe.to_tree_pattern(), view_path.to_tree_pattern()):
        assert accepts(view_path, probe), (
            view_path.to_xpath(), probe.to_xpath()
        )


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 10**9))
def test_nfa_rejections_are_justified(seed):
    """NFA rejection ⟹ no homomorphism (rejections never lose a view
    the selection stage could use)."""
    rng = random.Random(seed)
    view_path = random_path(rng)
    probe = random_path(rng)
    if not accepts(view_path, probe):
        assert not has_homomorphism(
            view_path.to_tree_pattern(), probe.to_tree_pattern()
        )


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 10**9))
def test_prefix_extension_acceptance(seed):
    """A view path accepts every extension of an accepted probe
    (accepting-state self-loop semantics)."""
    rng = random.Random(seed)
    view_path = random_path(rng)
    probe = random_path(rng)
    if not accepts(view_path, probe):
        return
    extended = PathPattern(
        probe.steps
        + (Step(rng.choice([Axis.CHILD, Axis.DESCENDANT]), rng.choice(LABELS)),)
    )
    assert accepts(view_path, extended)


def test_equivalent_spellings_accepted_both_ways():
    """Every spelling of an equivalent wildcard run is accepted by every
    other spelling's automaton."""
    spellings = ["/s/*//t", "/s//*/t", "/s//*//t"]
    paths = {
        text: PathPattern(
            tuple(
                node.step()
                for node in _parse(text).ret.root_path()
            )
        )
        for text in spellings
    }
    for view_text, view_path in paths.items():
        for probe_text, probe in paths.items():
            assert accepts(view_path, probe), (view_text, probe_text)


def _parse(text: str) -> TreePattern:
    from repro.xpath import parse_xpath

    return parse_xpath(text)


@pytest.mark.parametrize(
    "view_text,probe_text,expected",
    [
        # gap-unit corner cases found during development
        ("//*//c", "//e//c", True),
        ("//a/*", "/a/*//d//b", True),
        ("//c/*", "//c//c/*[.//d]", True),
        ("/a//*/c", "/a/c", False),
        ("/*", "/*[.//*]", True),
    ],
)
def test_regression_cases(view_text, probe_text, expected):
    """Pinned regressions: every false negative found while building the
    gap-unit construction."""
    from repro.core import VFilter, View

    vfilter = VFilter()
    vfilter.add_view(View.from_xpath("V", view_text))
    result = vfilter.filter(_parse(probe_text))
    assert (result.candidates == ["V"]) is expected
