"""Deep unit tests for the holistic twig join (multi-unit scenarios)."""

import random

import pytest

from repro.core import View
from repro.core.leaf_cover import coverage_units
from repro.core.refine import refine_unit
from repro.core.twig_join import join_units
from repro.matching import evaluate
from repro.storage import FragmentStore
from repro.xmltree import build_tree, encode_tree, unpack_code
from repro.xpath import parse_xpath

from conftest import random_pattern, random_tree


def _setup(spec, view_defs, query_expr):
    """Materialize views over a tree and prepare refined units."""
    doc = encode_tree(build_tree(spec))
    store = FragmentStore()
    query = parse_xpath(query_expr)
    refined_units = []
    for view_id, expression in view_defs.items():
        view = View.from_xpath(view_id, expression)
        answers = evaluate(view.pattern, doc.tree)
        store.materialize(view_id, [(n.dewey, n) for n in answers])
        units = coverage_units(view, query)
        assert units, (view_id, expression)
        for unit in units:
            refined_units.append(
                refine_unit(unit, query, store.fragments(view_id))
            )
    return doc, query, refined_units


class TestTwoUnitJoin:
    def test_join_on_shared_parent(self):
        spec = ("r", [
            ("s", ["t", "p"]),          # t but no f
            ("s", ["f", "p"]),          # f but no t
            ("s", ["t", "f", "p"]),     # both
        ])
        doc, query, units = _setup(
            spec,
            {"VT": "//s[t]/p", "VF": "//s[f]/p"},
            "//s[t][f]/p",
        )
        delta = next(u for u in units if u.unit.provides_delta)
        surviving = join_units(units, query, doc.fst, delta)
        assert len(surviving) == 1
        # the surviving root is under the third s (packed codes come back)
        root_code = unpack_code(surviving[0])
        assert doc.node_by_code(root_code).parent.children[0].label == "t"

    def test_join_rejects_different_parents(self):
        spec = ("r", [("s", ["t", "p"]), ("s", ["f", "p"])])
        doc, query, units = _setup(
            spec, {"VT": "//s[t]/p", "VF": "//s[f]/p"}, "//s[t][f]/p"
        )
        delta = next(u for u in units if u.unit.provides_delta)
        assert join_units(units, query, doc.fst, delta) == []

    def test_join_across_depths_with_descendant_axis(self):
        # s at two depths; query //s anchors must align per instance.
        spec = ("r", [
            ("s", ["t", "p", ("s", ["f", "p"])]),
        ])
        doc, query, units = _setup(
            spec, {"VT": "//s[t]/p", "VF": "//s[f]/p"}, "//s[t][f]/p"
        )
        delta = next(u for u in units if u.unit.provides_delta)
        # No single s has both t and f children.
        assert join_units(units, query, doc.fst, delta) == []

    def test_anchor_shared_between_units_forces_equality(self):
        """Two views returning the same query node: roots must coincide."""
        spec = ("r", [("s", ["t", "f", "p", "p"]), ("s", ["t", "p"])])
        doc, query, units = _setup(
            spec, {"VT": "//s[t]/p", "VF": "//s[f]/p"}, "//s[t][f]/p"
        )
        delta = next(u for u in units if u.unit.provides_delta)
        surviving = join_units(units, query, doc.fst, delta)
        # both p's under the first s qualify
        assert len(surviving) == 2
        for code in surviving:
            assert doc.fst.decode_packed(code)[-1] == "p"


class TestThreeUnitJoin:
    def test_triple_branch(self):
        spec = ("r", [
            ("s", ["a", "b", "c", "p"]),
            ("s", ["a", "b", "p"]),
            ("s", ["a", "c", "p"]),
        ])
        doc, query, units = _setup(
            spec,
            {"VA": "//s[a]/p", "VB": "//s[b]/p", "VC": "//s[c]/p"},
            "//s[a][b][c]/p",
        )
        delta = next(u for u in units if u.unit.provides_delta)
        surviving = join_units(units, query, doc.fst, delta)
        assert len(surviving) == 1


class TestUpperSkeletonVerification:
    def test_label_path_must_match(self):
        """Example 4.2's essence: same-label roots under structurally
        different ancestors must not join."""
        spec = ("r", [
            ("a", [("b", ["c", "d"])]),
            ("x", [("b", ["d"])]),   # b under x, not a
        ])
        doc, query, units = _setup(
            spec, {"VD": "//a/b/d", "VC": "//a/b[c]/d"}, "//a/b[c]/d"
        )
        delta = next(u for u in units if u.unit.provides_delta)
        surviving = join_units(units, query, doc.fst, delta)
        assert len(surviving) == 1
        assert doc.fst.decode_packed(surviving[0])[:2] == ("r", "a")

    def test_root_axis_pins_document_root(self):
        spec = ("a", [("a", ["b"]), "b"])
        doc, query, units = _setup(
            spec, {"V": "//a/b"}, "/a/b"
        )
        delta = units[0]
        surviving = join_units(units, query, doc.fst, delta)
        # only the document root's own b child
        assert surviving == [doc.tree.root.children[1].dewey_packed]


class TestJoinAgainstTruth:
    @pytest.mark.parametrize("seed", range(12))
    def test_single_unit_join_equals_pattern_semantics(self, seed):
        """A single equivalent view joined alone must reproduce the
        query's own answers (join = upper-skeleton check only)."""
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=25)
        doc = encode_tree(tree)
        query = random_pattern(rng, max_nodes=4)
        store = FragmentStore()
        view = View("V", query.copy())
        answers = evaluate(view.pattern, tree)
        store.materialize("V", [(n.dewey, n) for n in answers])
        units = [
            unit
            for unit in coverage_units(view, query)
            if unit.anchor is query.ret
        ]
        if not units:
            return
        refined = refine_unit(units[0], query, store.fragments("V"))
        surviving = set(join_units([refined], query, doc.fst, refined))
        truth_roots = {n.dewey_packed for n in answers}
        # anchored at RET(Q) with an equivalent view, the join must keep
        # exactly the true answers
        assert surviving == truth_roots
