"""Strict-typing gate (mypy.ini).

Two layers:

* when mypy is importable, run it with the project config and require a
  clean pass — this is the CI ``static-analysis`` job locally;
* always (mypy or not), parse ``mypy.ini`` and enforce the ratchet
  policy: the set of ``ignore_errors`` module globs may only ever
  shrink relative to the frozen baseline below.  Adding an entry —
  exempting *new* code from strict typing — fails immediately.
"""

from __future__ import annotations

import configparser
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
MYPY_INI = REPO / "mypy.ini"

#: Frozen at the introduction of the gate.  NEVER add to this set; when
#: a module becomes strict-clean, delete its entry from mypy.ini (the
#: subset assertion below keeps passing).
RATCHET_BASELINE = {
    "repro.xmltree.*",
    "repro.matching.*",
    "repro.workload.*",
    "repro.bench.*",
}

#: Modules that must never appear in the ratchet: the strict-clean core
#: the gate exists to protect.
ALWAYS_STRICT_PREFIXES = (
    "repro.core",
    "repro.xpath",
    "repro.analysis",
    "repro.delta",
    "repro.service",
    "repro.obs",
)


def _ratchet_entries() -> set[str]:
    parser = configparser.ConfigParser()
    parser.read(MYPY_INI)
    entries = set()
    for section in parser.sections():
        if not section.startswith("mypy-"):
            continue
        if parser.getboolean(section, "ignore_errors", fallback=False):
            entries.add(section[len("mypy-"):])
    return entries


def test_ratchet_only_shrinks():
    entries = _ratchet_entries()
    widened = entries - RATCHET_BASELINE
    assert not widened, (
        f"mypy ratchet grew: {sorted(widened)} — new code must be "
        f"strict-clean, not exempted"
    )


def test_strict_core_never_ratcheted():
    for entry in _ratchet_entries():
        bare = entry.rstrip(".*").rstrip(".")
        for prefix in ALWAYS_STRICT_PREFIXES:
            assert not bare.startswith(prefix), (
                f"{entry} exempts {prefix}, which must stay strict-clean"
            )


def test_mypy_strict_passes():
    pytest.importorskip("mypy", reason="mypy not installed (CI-only gate)")
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(MYPY_INI)],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"mypy --strict failed:\n{completed.stdout}\n{completed.stderr}"
    )
