"""HTTP front end and wire protocol (repro.service.server/protocol)."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.system import MaterializedViewSystem
from repro.errors import ViewNotAnswerableError, XPathSyntaxError
from repro.obs import parse_exposition
from repro.service import (
    AdmissionRejectedError,
    DeadlineExceededError,
    HTTPClient,
    InProcessClient,
    ProtocolError,
    QueryScheduler,
    QueryServiceServer,
    SnapshotEngine,
    error_payload,
)
from repro.service.protocol import (
    parse_query_request,
    parse_register_request,
)
from repro.workload.xmark import generate_xmark
from repro.xmltree.builder import encode_tree


# ----------------------------------------------------------------------
# protocol unit tests (no sockets)
# ----------------------------------------------------------------------
def test_parse_query_request_defaults_and_timeout():
    query, strategy, timeout = parse_query_request(
        json.dumps({"query": "//a/b"}).encode()
    )
    assert (query, strategy, timeout) == ("//a/b", "HV", None)
    _, strategy, timeout = parse_query_request(
        json.dumps({"query": "//a", "strategy": "MN",
                    "timeout_ms": 250}).encode()
    )
    assert strategy == "MN"
    assert timeout == pytest.approx(0.25)


@pytest.mark.parametrize("raw", [
    b"not json",
    b"[]",
    json.dumps({"query": ""}).encode(),
    json.dumps({"query": "//a", "strategy": "XX"}).encode(),
    json.dumps({"query": "//a", "timeout_ms": -5}).encode(),
    json.dumps({"query": "//a", "timeout_ms": "soon"}).encode(),
])
def test_parse_query_request_rejects_bad_input(raw):
    with pytest.raises(ProtocolError):
        parse_query_request(raw)


def test_parse_register_request():
    view_id, expression = parse_register_request(
        json.dumps({"view_id": "v1", "expression": "//a"}).encode()
    )
    assert (view_id, expression) == ("v1", "//a")
    with pytest.raises(ProtocolError):
        parse_register_request(json.dumps({"view_id": "v1"}).encode())


@pytest.mark.parametrize("error,status", [
    (ProtocolError("bad"), 400),
    (ProtocolError("big", status=413), 413),
    (XPathSyntaxError("nope"), 400),
    (ViewNotAnswerableError("uncovered"), 422),
    (ValueError("duplicate view id 'v1'"), 409),
    (DeadlineExceededError("late"), 504),
    (RuntimeError("boom"), 500),
])
def test_error_payload_status_mapping(error, status):
    got_status, body, _ = error_payload(error)
    assert got_status == status
    assert body["error"] == type(error).__name__


def test_error_payload_backpressure_carries_retry_after():
    status, body, headers = error_payload(
        AdmissionRejectedError("full", retry_after=0.125)
    )
    assert status == 503
    assert headers["Retry-After"] == "0.125"
    assert body["retry_after"] == pytest.approx(0.125)


# ----------------------------------------------------------------------
# live server round trips
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served():
    system = MaterializedViewSystem(
        encode_tree(generate_xmark(scale=0.05, seed=3))
    )
    system.register_view("name", "//item/name")
    engine = SnapshotEngine(system)
    scheduler = QueryScheduler(engine, workers=2, queue_limit=16)
    server = QueryServiceServer(engine, scheduler)
    server.start()
    try:
        yield server
    finally:
        server.shutdown()


def _call(server, method, path, body=None):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, payload,
                           {"Content-Type": "application/json"})
        response = connection.getresponse()
        data = response.read()
        return response.status, json.loads(data), dict(response.getheaders())
    finally:
        connection.close()


def test_healthz_reports_epoch(served):
    status, body, _ = _call(served, "GET", "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["epoch"] >= 1


def test_query_roundtrip_matches_direct_evaluation(served):
    status, body, _ = _call(
        served, "POST", "/query", {"query": "//item/name"}
    )
    assert status == 200
    system = served.engine.system
    from repro.xmltree.dewey import format_code

    expected = [format_code(code)
                for code in system.direct_codes("//item/name")]
    assert body["codes"] == expected
    assert body["views"] == ["name"]
    assert body["epoch"] >= 1


def test_query_error_statuses(served):
    assert _call(served, "POST", "/query", {"query": "!!"})[0] == 400
    assert _call(served, "POST", "/query", {"bad": 1})[0] == 400
    status, body, _ = _call(
        served, "POST", "/query", {"query": "//no/such"}
    )
    assert status == 422
    assert body["error"] == "ViewNotAnswerableError"
    assert _call(served, "GET", "/nope")[0] == 404
    assert _call(served, "POST", "/nope")[0] == 404


def test_register_then_duplicate(served):
    status, body, _ = _call(
        served, "POST", "/register",
        {"view_id": "desc", "expression": "//item/description"},
    )
    assert (status, body["materialized"]) == (201, True)
    assert _call(
        served, "POST", "/register",
        {"view_id": "desc", "expression": "//item/description"},
    )[0] == 409
    # The new view serves queries immediately.
    status, body, _ = _call(
        served, "POST", "/query", {"query": "//item/description"}
    )
    assert status == 200 and body["views"] == ["desc"]


def test_stats_exposes_engine_and_scheduler(served):
    status, body, _ = _call(served, "GET", "/stats")
    assert status == 200
    assert body["engine"]["views"]["registered"] >= 1
    assert body["scheduler"]["workers"] == 2
    assert "queue_depth" in body["scheduler"]


def test_http_client_reports_statuses(served):
    host, port = served.address
    client = HTTPClient(host, port)
    try:
        assert client.query("//item/name") == 200
        assert client.query("//no/such") == 422
    finally:
        client.close()


def test_in_process_client_maps_errors(served):
    client = InProcessClient(served.scheduler)
    assert client.query("//item/name") == 200
    assert client.query("//no/such") == 422
    assert client.query("!!bad") == 400


def _call_raw(server, path):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        data = response.read()
        return response.status, data, dict(response.getheaders())
    finally:
        connection.close()


def test_metrics_endpoint_serves_prometheus_text(served):
    _call(served, "POST", "/query", {"query": "//item/name"})
    status, payload, headers = _call_raw(served, "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    families = parse_exposition(payload.decode("utf-8"))
    answers = families["repro_answers_total"]
    assert sum(answers.samples.values()) >= 1.0
    requests = families["repro_requests_total"]
    assert (requests.value(event="completed") or 0.0) >= 1.0
    assert "repro_stage_seconds" in families
    assert "repro_queue_depth" in families


def test_debug_slow_exposes_traced_requests(served):
    _call(served, "POST", "/query", {"query": "//item/name"})
    status, body, _ = _call(served, "GET", "/debug/slow?limit=4")
    assert status == 200
    assert body["resident"] >= 1
    assert len(body["slow_queries"]) <= 4
    record = body["slow_queries"][0]
    assert record["trace_id"].startswith("query-")
    assert record["total_seconds"] > 0.0
    (serve,) = record["spans"]
    assert serve["name"] == "serve"
    assert any(
        child["name"] == "answer" for child in serve["children"]
    )


def test_debug_slow_rejects_bad_limit(served):
    assert _call(served, "GET", "/debug/slow?limit=frog")[0] == 400
    assert _call(served, "GET", "/debug/slow?limit=-1")[0] == 400
