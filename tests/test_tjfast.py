"""Tests for the TJFast-style leaf-stream evaluation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import MaterializedViewSystem, encode_tree
from repro.matching import evaluate, leaf_streams, tjfast_evaluate
from repro.xmltree import build_tree
from repro.xpath import parse_xpath

from conftest import random_pattern, random_tree


@pytest.fixture
def doc():
    return encode_tree(build_tree(
        ("r", [
            ("a", [("b", ["c"]), "d"]),
            ("a", ["d", ("b", [])]),
            ("x", [("a", [("b", ["c", "d"])])]),
        ])
    ))


class TestLeafStreams:
    def test_streams_sorted_and_complete(self, doc):
        pattern = parse_xpath("//a[b]/d")
        streams = leaf_streams(pattern, doc)
        assert len(streams) == 2
        for codes in streams.values():
            assert codes == sorted(codes)
        b_leaf = next(l for l in pattern.leaves() if l.label == "b")
        assert len(streams[id(b_leaf)]) == 3

    def test_wildcard_leaf_streams_everything(self, doc):
        pattern = parse_xpath("//a/*")
        streams = leaf_streams(pattern, doc)
        (codes,) = streams.values()
        assert len(codes) == doc.tree.size()


class TestEvaluation:
    @pytest.mark.parametrize(
        "expression",
        [
            "//a/b/c",
            "//a[b]/d",
            "//a[b/c][d]",
            "/r/a/d",
            "//x//b/d",
            "//*[b]/d",
            "//a[.//c]",
            "/r//a[b][d]",
        ],
    )
    def test_matches_evaluator(self, doc, expression):
        pattern = parse_xpath(expression)
        truth = {n.dewey for n in evaluate(pattern, doc.tree)}
        assert tjfast_evaluate(pattern, doc) == truth

    def test_empty_result(self, doc):
        assert tjfast_evaluate(parse_xpath("//zzz"), doc) == set()
        assert tjfast_evaluate(parse_xpath("//a[zzz]/b"), doc) == set()

    def test_attribute_constraints(self):
        tree = build_tree(("r", [("a", ["b"]), ("a", ["b"])]))
        tree.root.children[0].attributes["id"] = "1"
        doc = encode_tree(tree)
        pattern = parse_xpath("//a[@id='1']/b")
        truth = {n.dewey for n in evaluate(pattern, tree)}
        assert tjfast_evaluate(pattern, doc) == truth
        assert len(truth) == 1

    def test_single_path_query(self, doc):
        pattern = parse_xpath("//a/b")
        truth = {n.dewey for n in evaluate(pattern, doc.tree)}
        assert tjfast_evaluate(pattern, doc) == truth

    @pytest.mark.parametrize("seed", range(20))
    def test_random_agreement(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=30)
        doc_ = encode_tree(tree)
        for _ in range(3):
            pattern = random_pattern(rng, max_nodes=5)
            truth = {n.dewey for n in evaluate(pattern, tree)}
            assert tjfast_evaluate(pattern, doc_) == truth


class TestSystemIntegration:
    def test_answer_tj(self, doc):
        system = MaterializedViewSystem(doc)
        outcome = system.answer_tj("//a[b]/d")
        assert outcome.strategy == "TJ"
        assert outcome.codes == system.direct_codes("//a[b]/d")


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10**9))
def test_hypothesis_tjfast_equals_evaluator(seed):
    rng = random.Random(seed)
    tree = random_tree(rng, max_nodes=22)
    doc_ = encode_tree(tree)
    pattern = random_pattern(rng, max_nodes=5)
    truth = {n.dewey for n in evaluate(pattern, tree)}
    assert tjfast_evaluate(pattern, doc_) == truth
