"""Tests for the beyond-the-paper extensions: cost-based selection,
maximal contained rewriting, and VFILTER attribute pruning."""

import random

import pytest

from repro import MaterializedViewSystem, encode_tree
from repro.core import (
    VFilter,
    View,
    maximal_contained_rewriting,
    select_cost_based,
)
from repro.errors import ViewNotAnswerableError
from repro.matching import has_homomorphism
from repro.xmltree import build_tree
from repro.xpath import parse_xpath

from conftest import random_pattern, random_tree


def _sizes(mapping):
    return mapping.__getitem__


class TestCostBasedSelection:
    def test_answers_query(self):
        query = parse_xpath("//a[b][c]/e")
        views = [
            View.from_xpath("V0", "//a[b]/e"),
            View.from_xpath("V1", "//a[c]/e"),
        ]
        selection = select_cost_based(
            views, query, _sizes({"V0": 100, "V1": 100})
        )
        assert sorted(selection.view_ids) == ["V0", "V1"]

    def test_prefers_cheap_combination_over_single_huge_view(self):
        query = parse_xpath("//a[b][c]/e")
        views = [
            View.from_xpath("big", "//a[b][c]/e"),
            View.from_xpath("s1", "//a[b]/e"),
            View.from_xpath("s2", "//a[c]/e"),
        ]
        sizes = {"big": 10_000_000, "s1": 10, "s2": 10}
        selection = select_cost_based(views, query, _sizes(sizes))
        assert sorted(selection.view_ids) == ["s1", "s2"]

    def test_prefers_single_view_when_cheap(self):
        query = parse_xpath("//a[b][c]/e")
        views = [
            View.from_xpath("big", "//a[b][c]/e"),
            View.from_xpath("s1", "//a[b]/e"),
            View.from_xpath("s2", "//a[c]/e"),
        ]
        sizes = {"big": 10, "s1": 10, "s2": 10}
        selection = select_cost_based(views, query, _sizes(sizes))
        assert selection.view_ids == ["big"]

    def test_ensures_delta(self):
        query = parse_xpath("//a[b]/c")
        views = [
            View.from_xpath("pred", "//a[c]/b"),  # covers b, no delta
            View.from_xpath("delta", "//a/c"),
        ]
        selection = select_cost_based(
            views, query, _sizes({"pred": 1, "delta": 1000})
        )
        assert "delta" in selection.view_ids

    def test_unanswerable(self):
        query = parse_xpath("//a[b]/c")
        with pytest.raises(ViewNotAnswerableError):
            select_cost_based(
                [View.from_xpath("V", "//x/y")], query, _sizes({"V": 1})
            )

    def test_redundancy_removed(self):
        query = parse_xpath("//a[b]/c")
        views = [
            View.from_xpath("exact", "//a[b]/c"),
            View.from_xpath("loose", "//a/c"),
        ]
        selection = select_cost_based(
            views, query, _sizes({"exact": 10, "loose": 5})
        )
        assert selection.view_ids == ["exact"]

    @pytest.mark.parametrize("seed", range(10))
    def test_end_to_end_correct(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=25)
        system = MaterializedViewSystem(encode_tree(tree))
        for index in range(6):
            system.register_view(f"v{index}", random_pattern(rng, max_nodes=4))
        query = random_pattern(rng, max_nodes=4)
        try:
            selection = select_cost_based(
                system.materialized_views(),
                query,
                system.fragments.fragment_bytes,
            )
        except ViewNotAnswerableError:
            return
        from repro.core.rewrite import rewrite

        result = rewrite(
            selection,
            query,
            system.fragments,
            system.document.schema,
            system.document.fst,
        )
        assert result.codes == system.direct_codes(query)


class TestMaximalContainedRewriting:
    def _system(self):
        tree = build_tree(
            ("r", [
                ("a", [("b", ["c"]), "d"]),
                ("a", ["d"]),
                ("a", [("b", []), "d"]),
            ])
        )
        return MaterializedViewSystem(encode_tree(tree))

    def test_contained_view_contributes(self):
        system = self._system()
        # view more restrictive than the query: all its answers qualify
        system.register_view("V", "//a[b/c]/d")
        query = parse_xpath("//a[b]/d")
        result = maximal_contained_rewriting(
            system.materialized_views(), query,
            system.fragments, system.document.schema,
        )
        truth = set(system.direct_codes(query))
        assert set(result.codes) <= truth
        assert result.codes  # the a[b/c] answer is certain
        assert not result.is_exact

    def test_equivalent_view_gives_exact(self):
        system = self._system()
        system.register_view("V", "//a[b]/d")
        query = parse_xpath("//a[b]/d")
        result = maximal_contained_rewriting(
            system.materialized_views(), query,
            system.fragments, system.document.schema,
        )
        assert result.is_exact
        assert result.codes == system.direct_codes(query)

    def test_more_general_view_compensated(self):
        system = self._system()
        system.register_view("V", "//a/d")  # more general than the query
        query = parse_xpath("//a[b]/d")
        result = maximal_contained_rewriting(
            system.materialized_views(), query,
            system.fragments, system.document.schema,
        )
        # single-view equivalent rewriting applies: [b] is checkable? No —
        # b is NOT under d, so V alone cannot answer; no contribution.
        assert result.codes == []

    def test_union_of_contributions(self):
        system = self._system()
        system.register_view("V1", "//a[b/c]/d")
        system.register_view("V2", "//a[b]/d")  # equivalent -> exact
        query = parse_xpath("//a[b]/d")
        result = maximal_contained_rewriting(
            system.materialized_views(), query,
            system.fragments, system.document.schema,
        )
        assert result.is_exact
        assert result.codes == system.direct_codes(query)

    @pytest.mark.parametrize("seed", range(15))
    def test_always_contained_property(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=25)
        system = MaterializedViewSystem(encode_tree(tree))
        for index in range(6):
            system.register_view(f"v{index}", random_pattern(rng, max_nodes=4))
        query = random_pattern(rng, max_nodes=4)
        result = maximal_contained_rewriting(
            system.materialized_views(), query,
            system.fragments, system.document.schema,
        )
        truth = set(system.direct_codes(query))
        assert set(result.codes) <= truth
        if result.is_exact:
            assert set(result.codes) == truth


class TestAttributePruning:
    def test_prunes_constrained_views(self):
        vfilter = VFilter(attribute_pruning=True)
        vfilter.add_views([
            View.from_xpath("plain", "//a/b"),
            View.from_xpath("constrained", "//a[@id='1']/b"),
        ])
        result = vfilter.filter(parse_xpath("//a/b"))
        assert result.candidates == ["plain"]

    def test_keeps_views_with_matching_constraints(self):
        vfilter = VFilter(attribute_pruning=True)
        vfilter.add_views([
            View.from_xpath("constrained", "//a[@id='1']/b"),
        ])
        result = vfilter.filter(parse_xpath("//a[@id='1'][c]/b"))
        assert result.candidates == ["constrained"]

    def test_disabled_keeps_everything_structural(self):
        vfilter = VFilter(attribute_pruning=False)
        vfilter.add_views([
            View.from_xpath("constrained", "//a[@id='1']/b"),
        ])
        result = vfilter.filter(parse_xpath("//a/b"))
        assert result.candidates == ["constrained"]

    @pytest.mark.parametrize("seed", range(8))
    def test_pruning_soundness_random(self, seed):
        """Pruning never drops a view with a homomorphism to the query."""
        rng = random.Random(seed)
        views = []
        for index in range(12):
            pattern = random_pattern(rng, max_nodes=4)
            views.append(View(f"v{index}", pattern))
        vfilter = VFilter(attribute_pruning=True)
        vfilter.add_views(views)
        for _ in range(4):
            query = random_pattern(rng, max_nodes=5)
            candidates = set(vfilter.filter(query).candidates)
            for view in views:
                if has_homomorphism(view.pattern, query):
                    assert view.view_id in candidates
