"""Tests for the fragment store's warm-read cache and related behavior."""

from repro.matching import evaluate
from repro.storage import FragmentStore, KVStore
from repro.xmltree import build_tree, encode_tree


def _materialized_store(spec, view_expr):
    from repro.core import View

    doc = encode_tree(build_tree(spec))
    store = FragmentStore()
    view = View.from_xpath("V", view_expr)
    answers = evaluate(view.pattern, doc.tree)
    store.materialize("V", [(n.dewey, n) for n in answers])
    return doc, store


class TestWarmCache:
    def test_second_read_returns_same_objects(self):
        _doc, store = _materialized_store(
            ("r", [("a", ["b"]), ("a", ["b"])]), "//a"
        )
        first = store.fragments("V")
        second = store.fragments("V")
        assert first is second

    def test_cache_invalidated_on_drop(self):
        _doc, store = _materialized_store(("r", [("a", ["b"])]), "//a")
        store.fragments("V")
        store.drop("V")
        assert store.fragments("V") == []

    def test_cached_roots_keep_reencoded_codes(self):
        """rewrite() stamps Dewey codes onto cached fragment roots; a
        later read must still be consistent (idempotent re-encode)."""
        from repro import MaterializedViewSystem

        doc = encode_tree(build_tree(
            ("r", [("s", ["t", ("p", ["q"])]), ("s", ["t", "p"])])
        ))
        system = MaterializedViewSystem(doc)
        system.register_view("V", "//s[t]/p")
        first = system.answer("//s[t]/p")
        second = system.answer("//s[t]/p[q]")
        third = system.answer("//s[t]/p")
        assert first.codes == third.codes
        assert second.codes == system.direct_codes("//s[t]/p[q]")

    def test_cache_not_shared_between_views(self):
        from repro.core import View

        doc = encode_tree(build_tree(("r", [("a", ["b"]), ("c", ["d"])])))
        store = FragmentStore()
        for view_id, expr in (("VA", "//a"), ("VC", "//c")):
            view = View.from_xpath(view_id, expr)
            answers = evaluate(view.pattern, doc.tree)
            store.materialize(view_id, [(n.dewey, n) for n in answers])
        assert store.fragments("VA")[0].root.label == "a"
        assert store.fragments("VC")[0].root.label == "c"

    def test_reopen_from_disk_bypasses_stale_cache(self, tmp_path):
        path = str(tmp_path / "frags.db")
        from repro.core import View

        doc = encode_tree(build_tree(("r", [("a", ["b"])])))
        with KVStore(path) as kv:
            store = FragmentStore(kv)
            view = View.from_xpath("V", "//a")
            answers = evaluate(view.pattern, doc.tree)
            store.materialize("V", [(n.dewey, n) for n in answers])
            store.fragments("V")  # warm
        with KVStore(path) as kv:
            fresh = FragmentStore(kv)
            fragments = fresh.fragments("V")
            assert len(fragments) == 1
            assert fragments[0].root.label == "a"
