"""Tests for the benchmark support package (repro.bench) and errors."""

import pytest

from repro.bench import (
    SEED_VIEWS,
    TABLE_I_QUERY,
    TABLE_I_VIEWS,
    TEST_QUERIES,
    build_environment,
    build_view_patterns,
    format_bytes,
    format_seconds,
    format_table,
)
from repro.core import View
from repro.errors import (
    ReproError,
    RewritingError,
    StorageCorruptionError,
    StorageError,
    ViewNotAnswerableError,
    XMLParseError,
    XPathSyntaxError,
)
from repro.xpath import parse_xpath


class TestReportFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(12e-6) == "12.0 µs"
        assert format_seconds(2.5e-3) == "2.50 ms"
        assert format_seconds(1.25) == "1.250 s"

    def test_format_bytes_scales(self):
        assert format_bytes(12) == "12 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], "Title"
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "longer" in table


class TestWorkloadDefinitions:
    def test_test_queries_parse(self):
        for expression, expected in TEST_QUERIES.values():
            pattern = parse_xpath(expression)
            assert pattern.size() >= 2
            assert expected in (1, 2, 3)

    def test_seed_views_parse(self):
        for expression in SEED_VIEWS.values():
            parse_xpath(expression)

    def test_table_i_matches_paper_example(self):
        views = {
            vid: View.from_xpath(vid, expr)
            for vid, expr in TABLE_I_VIEWS.items()
        }
        assert views["V1"].path_count == 2
        assert views["V3"].path_count == 1
        parse_xpath(TABLE_I_QUERY)


class TestEnvironmentBuilders:
    def test_environment_cached(self):
        first = build_environment(scale=0.1, view_count=5, seed=3)
        second = build_environment(scale=0.1, view_count=5, seed=3)
        assert first is second
        assert first.view_count >= 5  # seed views + generated

    def test_test_queries_answerable_in_environment(self):
        env = build_environment(scale=0.3, view_count=10, seed=3)
        for expression, _ in env.test_queries.values():
            outcome = env.system.answer(expression, "HV")
            assert outcome.codes == env.system.direct_codes(expression)

    def test_view_sets_nested(self):
        small = build_view_patterns(20, scale=0.1, seed=5)
        large = build_view_patterns(40, scale=0.1, seed=5)
        assert [v.to_xpath() for v in large[:20]] == [
            v.to_xpath() for v in small
        ]

    def test_view_sets_cached_slices(self):
        large = build_view_patterns(30, scale=0.1, seed=6)
        small = build_view_patterns(10, scale=0.1, seed=6)
        assert small == large[:10]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            XMLParseError,
            XPathSyntaxError,
            StorageError,
            StorageCorruptionError,
            ViewNotAnswerableError,
            RewritingError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_corruption_is_storage_error(self):
        assert issubclass(StorageCorruptionError, StorageError)

    def test_xpath_error_carries_expression(self):
        error = XPathSyntaxError("bad", "//a[")
        assert "//a[" in str(error)
        assert error.expression == "//a["

    def test_parse_error_carries_position(self):
        error = XMLParseError("bad", 17)
        assert "17" in str(error)

    def test_unanswerable_defaults_empty_uncovered(self):
        error = ViewNotAnswerableError("nope")
        assert error.uncovered == frozenset()


class TestRunMetadata:
    """BENCH_*.json stamping (repro.bench.report.run_metadata)."""

    def test_metadata_keys_and_shapes(self):
        from repro.bench.report import run_metadata

        metadata = run_metadata()
        assert set(metadata) == {
            "git_sha", "timestamp", "python", "implementation", "platform",
        }
        assert all(isinstance(value, str) for value in metadata.values())
        # ISO-8601 local timestamp: 2026-08-08T12:34:56+0000
        assert metadata["timestamp"][4] == "-"
        assert metadata["timestamp"][10] == "T"
        assert metadata["python"].count(".") == 2

    def test_git_sha_resolves_in_this_repo(self):
        from repro.bench.report import _git_revision

        revision = _git_revision()
        # The repo under test is a git checkout; outside one the helper
        # degrades to the sentinel rather than raising.
        assert revision == "unknown" or len(revision.split("-")[0]) == 40
