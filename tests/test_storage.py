"""Tests for the storage substrate: serialization, KV store, fragments."""

import os
import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageCorruptionError, StorageError
from repro.storage import (
    FragmentStore,
    KVStore,
    decode_dewey,
    decode_fragment,
    decode_text,
    decode_varint,
    encode_dewey,
    encode_fragment,
    encode_text,
    encode_varint,
)
from repro.xmltree import XMLNode, build_tree

from conftest import random_tree


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21, 2**40])
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data, 0)
        assert decoded == value
        assert offset == len(data)

    def test_rejects_negative(self):
        with pytest.raises(StorageError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(StorageError):
            decode_varint(b"\x80", 0)

    @given(st.integers(0, 2**62))
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value), 0)
        assert decoded == value


class TestTextAndDewey:
    @given(st.text(max_size=60))
    def test_text_roundtrip(self, value):
        decoded, _ = decode_text(encode_text(value), 0)
        assert decoded == value

    @given(st.lists(st.integers(0, 10_000), min_size=0, max_size=10))
    def test_dewey_roundtrip(self, components):
        code = tuple(components)
        decoded, _ = decode_dewey(encode_dewey(code), 0)
        assert decoded == code

    def test_truncated_string(self):
        data = encode_text("hello")[:-2]
        with pytest.raises(StorageError):
            decode_text(data, 0)


class TestFragmentSerialization:
    def test_roundtrip_structure(self):
        tree = build_tree(("a", [("b", ["c", "d"]), "e"]))
        tree.root.attributes["id"] = "1"
        tree.root.children[1].text = "some text"
        data = encode_fragment(tree.root)
        again, offset = decode_fragment(data)
        assert offset == len(data)
        assert again.structurally_equal(tree.root)

    def test_roundtrip_preserves_sibling_order(self):
        root = XMLNode("r")
        for label in "cba":
            root.new_child(label)
        again, _ = decode_fragment(encode_fragment(root))
        assert [child.label for child in again.children] == list("cba")

    @pytest.mark.parametrize("seed", range(6))
    def test_roundtrip_random_trees(self, seed):
        tree = random_tree(random.Random(seed), max_nodes=40)
        again, _ = decode_fragment(encode_fragment(tree.root))
        assert again.structurally_equal(tree.root)

    def test_unicode_and_escaping(self):
        node = XMLNode("α", text="ünïcode ✓", attributes={"k": "v&<>'\""})
        again, _ = decode_fragment(encode_fragment(node))
        assert again.structurally_equal(node)


class TestKVStore:
    def test_in_memory_basics(self):
        store = KVStore()
        assert store.in_memory
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert b"k" in store and b"missing" not in store
        assert len(store) == 1
        assert store.delete(b"k")
        assert not store.delete(b"k")
        assert store.get(b"k") is None

    def test_overwrite_updates_size(self):
        store = KVStore()
        store.put(b"k", b"1234")
        store.put(b"k", b"12")
        assert store.stored_bytes == len(b"k") + 2

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "db")
        with KVStore(path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.delete(b"a")
        with KVStore(path) as store:
            assert store.get(b"a") is None
            assert store.get(b"b") == b"2"
            assert len(store) == 1

    def test_recovery_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "db")
        with KVStore(path) as store:
            store.put(b"a", b"1")
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # torn partial record
        with KVStore(path) as store:
            assert store.get(b"a") == b"1"
            store.put(b"b", b"2")
        with KVStore(path) as store:
            assert store.get(b"b") == b"2"

    def test_corruption_detected(self, tmp_path):
        path = str(tmp_path / "db")
        with KVStore(path) as store:
            store.put(b"a", b"abcdefgh")
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF  # flip a payload byte under the CRC
        open(path, "wb").write(bytes(data))
        with pytest.raises(StorageCorruptionError):
            KVStore(path)

    def test_compaction_reclaims_space(self, tmp_path):
        path = str(tmp_path / "db")
        with KVStore(path) as store:
            for round_ in range(20):
                store.put(b"k", f"value-{round_}".encode())
            before = store.file_bytes
            store.compact()
            after = store.file_bytes
            assert after < before
            assert store.get(b"k") == b"value-19"
        with KVStore(path) as store:
            assert store.get(b"k") == b"value-19"

    def test_scan_prefix(self):
        store = KVStore()
        store.put(b"x:1", b"a")
        store.put(b"x:2", b"b")
        store.put(b"y:1", b"c")
        found = dict(store.scan_prefix(b"x:"))
        assert found == {b"x:1": b"a", b"x:2": b"b"}

    @pytest.mark.parametrize("persistent", [False, True])
    def test_random_operations_match_dict(self, tmp_path, persistent):
        path = str(tmp_path / "db") if persistent else None
        rng = random.Random(11)
        store = KVStore(path)
        model: dict[bytes, bytes] = {}
        for _ in range(300):
            key = f"k{rng.randrange(20)}".encode()
            action = rng.random()
            if action < 0.6:
                value = os.urandom(rng.randrange(0, 30))
                store.put(key, value)
                model[key] = value
            elif action < 0.8:
                assert store.get(key) == model.get(key)
            else:
                assert store.delete(key) == (key in model)
                model.pop(key, None)
        assert {k: store.get(k) for k in model} == model
        assert len(store) == len(model)
        store.close()


class TestFragmentStore:
    def _entries(self, tree):
        from repro.xmltree import encode_tree

        doc = encode_tree(tree)
        return [(node.dewey, node) for node in tree.iter_nodes()
                if node.label == "b"], doc

    def test_materialize_and_read_back(self):
        tree = build_tree(("r", [("a", [("b", ["c"])]), ("b", ["d"])]))
        entries, _doc = self._entries(tree)
        store = FragmentStore()
        assert store.materialize("v", entries)
        fragments = store.fragments("v")
        assert [f.code for f in fragments] == sorted(e[0] for e in entries)
        assert fragments[0].root.label == "b"
        assert store.fragment_count("v") == 2
        assert store.fragment_bytes("v") > 0
        assert store.is_materialized("v")

    def test_cap_marks_view_unusable(self):
        tree = build_tree(("r", [("b", ["c"] * 50)]))
        entries, _doc = self._entries(tree)
        store = FragmentStore(cap_bytes=10)
        assert not store.materialize("big", entries)
        assert store.is_capped("big")
        assert not store.is_materialized("big")
        assert store.fragments("big") == []

    def test_duplicate_view_rejected(self):
        store = FragmentStore()
        store.materialize("v", [])
        with pytest.raises(StorageError):
            store.materialize("v", [])

    def test_drop(self):
        tree = build_tree(("r", [("b", ["c"])]))
        entries, _doc = self._entries(tree)
        store = FragmentStore()
        store.materialize("v", entries)
        store.drop("v")
        assert store.fragments("v") == []
        assert store.view_ids() == []
        store.drop("v")  # idempotent

    def test_manifest_writers_evict_warm_cache(self):
        # White-box regression for the L15 gap: a manifest rewrite
        # (store or mark-capped) must drop the view's warm-cache entry,
        # not rely on every caller routing through drop() first.
        tree = build_tree(("r", [("b", ["c"])]))
        entries, _doc = self._entries(tree)
        store = FragmentStore()
        sentinel = object()
        store._cache["v"] = [sentinel]
        store.materialize("v", entries)
        fragments = store.fragments("v")
        assert sentinel not in fragments
        assert [f.code for f in fragments] == [e[0] for e in entries]

        capped = FragmentStore(cap_bytes=1)
        capped._cache["big"] = [sentinel]
        assert not capped.materialize("big", entries)
        assert capped.fragments("big") == []

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "frags")
        tree = build_tree(("r", [("b", ["c"]), ("b", [])]))
        entries, _doc = self._entries(tree)
        with KVStore(path) as kv:
            store = FragmentStore(kv)
            store.materialize("v", entries)
        with KVStore(path) as kv:
            store = FragmentStore(kv)
            assert store.is_materialized("v")
            assert len(store.fragments("v")) == 2
            assert store.fragments("v")[0].root.label == "b"

    def test_codes_sorted(self):
        tree = build_tree(("r", [("b", []), ("a", [("b", [])])]))
        from repro.xmltree import encode_tree

        encode_tree(tree)
        entries = [
            (node.dewey, node)
            for node in reversed(list(tree.iter_nodes()))
            if node.label == "b"
        ]
        store = FragmentStore()
        store.materialize("v", entries)
        codes = store.codes("v")
        assert codes == sorted(codes)


class TestKVStoreConcurrency:
    """The store serialises its append/put path: racing writers share
    one OS file handle (seek-to-end + write), so without the internal
    lock they could interleave and tear a record mid-log."""

    def test_concurrent_writers_never_tear_a_record(self, tmp_path):
        import threading

        path = str(tmp_path / "concurrent.kv")
        writers, per_writer = 8, 50
        with KVStore(path) as store:
            def writer(index):
                for serial in range(per_writer):
                    key = f"w{index}:{serial}".encode()
                    value = (f"payload-{index}-{serial}-".encode()
                             + bytes([index]) * (32 + serial))
                    store.put(key, value)
                    assert store.get(key) is not None

            pool = [threading.Thread(target=writer, args=(index,))
                    for index in range(writers)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            assert len(store) == writers * per_writer

        # Recovery replays the whole log: any torn or interleaved
        # record would raise StorageError/StorageCorruptionError here.
        with KVStore(path) as store:
            assert len(store) == writers * per_writer
            for index in range(writers):
                for serial in range(per_writer):
                    key = f"w{index}:{serial}".encode()
                    expected = (f"payload-{index}-{serial}-".encode()
                                + bytes([index]) * (32 + serial))
                    assert store.get(key) == expected

    def test_concurrent_readers_and_writers_round_trip(self, tmp_path):
        import threading

        path = str(tmp_path / "mixed.kv")
        stop = threading.Event()
        errors = []
        with KVStore(path) as store:
            store.put(b"hot", b"v0")

            def reader():
                try:
                    while not stop.is_set():
                        value = store.get(b"hot")
                        assert value is not None
                        assert value.startswith(b"v")
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            pool = [threading.Thread(target=reader) for _ in range(4)]
            for thread in pool:
                thread.start()
            for version in range(200):
                store.put(b"hot", f"v{version}".encode())
            stop.set()
            for thread in pool:
                thread.join()
        assert not errors, errors
