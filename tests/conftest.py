"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest

# Runtime contract checks (repro.analysis.contracts) are on for the
# whole suite unless a test or the environment says otherwise.
os.environ.setdefault("XMVR_CHECK", "1")

from repro.xmltree import DocumentSchema, XMLNode, XMLTree, build_tree, encode_tree
from repro.xpath.ast import Axis
from repro.xpath.pattern import PatternNode, TreePattern

#: Small alphabet used by random generators throughout the suite.
LABELS = list("abcde")


@pytest.fixture
def book_tree() -> XMLTree:
    """The paper's Figure 2 book document (shape-faithful)."""
    return build_tree(
        ("b", [
            "t", "a", "a",
            ("s", ["t", "p", ("f", ["i"])]),
            ("s", ["t", "p", "p",
                   ("s", ["t", "p", ("f", ["i"]), "f"]),
                   ("s", ["t", "p"]),
                  ]),
        ])
    )


@pytest.fixture
def book_schema() -> DocumentSchema:
    """Schema matching the paper's FST (Figure 3): b→(t,a,s), s→(t,p,s,f)."""
    return DocumentSchema("b", {
        "b": ["t", "a", "s"],
        "s": ["t", "p", "s", "f"],
        "t": [], "a": [], "p": [],
        "f": ["i"], "i": [],
    })


@pytest.fixture
def book_doc(book_tree, book_schema):
    return encode_tree(book_tree, book_schema)


def random_tree(rng: random.Random, max_nodes: int = 40, max_depth: int = 6) -> XMLTree:
    """A random small XML tree over ``LABELS``."""
    root = XMLNode(rng.choice(LABELS))
    nodes = [root]
    target = rng.randint(3, max_nodes)
    while len(nodes) < target:
        parent = rng.choice(nodes)
        if parent.depth() >= max_depth:
            continue
        nodes.append(parent.new_child(rng.choice(LABELS)))
    return XMLTree(root)


def random_pattern(
    rng: random.Random, max_nodes: int = 5, wildcards: bool = True
) -> TreePattern:
    """A random tree pattern over ``LABELS`` (answer node random)."""
    alphabet = LABELS + (["*"] if wildcards else [])
    axes = [Axis.CHILD, Axis.DESCENDANT]
    root = PatternNode(rng.choice(alphabet), rng.choice(axes))
    nodes = [root]
    for _ in range(rng.randint(0, max_nodes - 1)):
        parent = rng.choice(nodes)
        nodes.append(parent.new_child(rng.choice(alphabet), rng.choice(axes)))
    return TreePattern(root, rng.choice(nodes))


def brute_force_answers(pattern: TreePattern, tree: XMLTree) -> set:
    """Reference evaluator: enumerate all embeddings explicitly.

    Exponential; for small trees/patterns only.  Used to validate the
    production evaluator.
    """
    tree_nodes = list(tree.iter_nodes())
    answers = set()

    def node_ok(p, t):
        if p.label != "*" and p.label != t.label:
            return False
        return all(c.matches(t.attributes) for c in p.constraints)

    if pattern.root.axis is Axis.CHILD:
        root_hosts = [tree.root]
    else:
        root_hosts = tree_nodes

    def embeds_with_ret(pattern_node, tree_node, ret_target):
        """∃ embedding of the subtree with pattern_node→tree_node and
        the answer node forced onto ret_target?"""
        if not node_ok(pattern_node, tree_node):
            return False
        if pattern_node is pattern.ret and tree_node is not ret_target:
            return False
        for child in pattern_node.children:
            if child.axis is Axis.CHILD:
                hosts = tree_node.children
            else:
                hosts = list(tree_node.iter_descendants())
            if not any(
                embeds_with_ret(child, host, ret_target) for host in hosts
            ):
                return False
        return True

    for candidate in tree_nodes:
        if any(
            embeds_with_ret(pattern.root, host, candidate)
            for host in root_hosts
        ):
            answers.add(candidate)
    return answers
