"""Scenario tests for maximal contained rewriting over XMark data."""

import pytest

from repro.core.system import MaterializedViewSystem
from repro.workload import generate_xmark_document


@pytest.fixture(scope="module")
def system():
    document = generate_xmark_document(scale=0.5, seed=13)
    sys_ = MaterializedViewSystem(document)
    # Restrictive views — each contained in broader queries.
    sys_.register_view("feat", "//item[@featured='yes']/description")
    sys_.register_view("parl", "//item[location]/description[parlist]")
    sys_.register_view("named", "//person[address]/name")
    # A broad view (more general than most probes).
    sys_.register_view("alldesc", "//item/description")
    return sys_


class TestCertainAnswers:
    def test_restrictive_views_contribute_lower_bound(self, system):
        query = "//item/description"
        result = system.answer_contained(query)
        truth = set(system.direct_codes(query))
        assert set(result.codes) <= truth
        # 'alldesc' is equivalent → exact
        assert result.is_exact
        assert set(result.codes) == truth
        assert "alldesc" in result.contributing_views

    def test_partial_answers_without_equivalent_view(self, system):
        query = "//item[quantity]/description"
        result = system.answer_contained(query)
        truth = set(system.direct_codes(query))
        assert set(result.codes) <= truth
        # 'alldesc' can answer alone: quantity is NOT below description,
        # so no single-view equivalence; but 'feat'/'parl' are not
        # contained in this query either (featured/parlist do not imply
        # quantity) — expect no exactness claim.
        if not result.is_exact:
            assert set(result.codes) < truth or result.codes == sorted(truth)

    def test_contained_view_for_broader_query(self, system):
        # parl = //item[location]/description[parlist] is contained in
        # //*[location]/description: its answers are certain answers.
        query = "//*[location]/description"
        result = system.answer_contained(query)
        truth = set(system.direct_codes(query))
        assert set(result.codes) <= truth
        assert "parl" in result.contributing_views
        assert result.codes  # the restrictive view contributes something

    def test_value_constraint_does_not_imply_existence(self, system):
        """Pattern-level containment uses exact constraint matching (the
        paper's rule), so @featured='yes' does not certify [@featured] —
        the view stays out even though the implication holds on values."""
        result = system.answer_contained("//item[@featured]/description")
        assert "feat" not in result.contributing_views

    def test_equivalence_via_compensation(self, system):
        # 'alldesc' is more general; the [parlist] predicate sits below
        # the answer node, so single-view compensation applies.
        query = "//item/description[parlist]"
        result = system.answer_contained(query)
        assert result.is_exact
        assert result.codes == system.direct_codes(query)

    def test_unrelated_query_contributes_nothing(self, system):
        result = system.answer_contained("//closed_auction/price")
        assert result.codes == []
        assert not result.is_exact
        assert result.contributing_views == []

    def test_equivalent_answer_agrees_with_pipeline(self, system):
        query = "//person[address]/name"
        contained = system.answer_contained(query)
        outcome = system.answer(query, "HV")
        assert contained.is_exact
        assert contained.codes == outcome.codes
