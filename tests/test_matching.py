"""Tests for homomorphism, evaluation, containment and minimization."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.matching import (
    branch_maps_into,
    contains,
    equivalent,
    evaluate,
    evaluate_boolean,
    evaluate_relative,
    feasible_anchors,
    feasible_pairs,
    has_homomorphism,
    minimize,
    minimized_copy,
    satisfies_relative,
    subtree_maps_to,
    wildcard_run_bound,
)
from repro.xmltree import build_tree, encode_tree
from repro.xpath import parse_xpath

from conftest import brute_force_answers, random_pattern, random_tree


class TestHomomorphism:
    @pytest.mark.parametrize(
        "general,specific,expected",
        [
            # identical patterns
            ("/a/b", "/a/b", True),
            # child vs descendant
            ("/a//b", "/a/b", True),
            ("/a/b", "/a//b", False),
            # wildcard direction
            ("/a/*", "/a/b", True),
            ("/a/b", "/a/*", False),
            ("/a/*", "/a/*", True),
            # // maps across a longer chain
            ("/a//b", "/a/x/b", True),
            ("/a//b", "/a/x/y/b", True),
            # branch absorption
            ("//a[b]", "//a[b][c]", True),
            ("//a[b][c]", "//a[b]", False),
            # roots
            ("//b", "/a/b", True),
            ("/b", "//a/b", False),
            ("//a", "/a", True),
            ("/a", "//a", False),
            # deep branches
            ("//a[b]/c", "//a[b/d]/c", True),
            ("//a[b/d]/c", "//a[b]/c", False),
            # descendant branch
            ("//a[.//d]", "//a[b/d]", True),
            ("//a[b/d]", "//a[.//d]", False),
        ],
    )
    def test_directional_cases(self, general, specific, expected):
        assert has_homomorphism(
            parse_xpath(general), parse_xpath(specific)
        ) is expected

    def test_attribute_constraints_direction(self):
        weaker = parse_xpath("//a/b")
        stronger = parse_xpath("//a[@id='1']/b")
        assert has_homomorphism(weaker, stronger)
        assert not has_homomorphism(stronger, weaker)

    def test_attribute_constraints_exact_match(self):
        first = parse_xpath("//a[@id='1']/b")
        second = parse_xpath("//a[@id='2']/b")
        assert not has_homomorphism(first, second)
        assert has_homomorphism(first, parse_xpath("//a[@id='1']/b"))

    def test_feasible_anchors_simple(self):
        view = parse_xpath("s[t]/p")
        query = parse_xpath("s[f//i][t]/p")
        anchors = feasible_anchors(view, query)
        assert [node.label for node in anchors] == ["p"]

    def test_feasible_anchors_multiple(self):
        view = parse_xpath("//a")
        query = parse_xpath("//a/a/b")
        anchors = feasible_anchors(view, query)
        assert sorted(node.label for node in anchors) == ["a", "a"]

    def test_feasible_pairs_upward_consistency(self):
        # The view's b must map under an a that also hosts the c branch.
        view = parse_xpath("//a[c]/b")
        query = parse_xpath("//x[a/b]/a[c]/b")
        anchors = feasible_anchors(view, query)
        # only the b under a[c] qualifies
        assert len(anchors) == 1
        assert anchors[0].parent.children[0].label in ("c", "b")

    def test_feasible_pairs_cover_all_nodes(self):
        view = parse_xpath("//a/b")
        query = parse_xpath("//a/b")
        pairs = feasible_pairs(view, query)
        assert all(len(targets) == 1 for targets in pairs.values())

    def test_no_homomorphism_empty_anchors(self):
        view = parse_xpath("/x/y")
        query = parse_xpath("/a/b")
        assert feasible_anchors(view, query) == []


class TestBranchMapsInto:
    def test_child_branch_needs_child_edge(self):
        query = parse_xpath("//a[b]/c")
        view = parse_xpath("//a[.//b]/c")
        branch = next(c for c in query.root.children if c.label == "b")
        # query /b cannot be implied by view //b
        assert not branch_maps_into(branch, view.root)

    def test_descendant_branch_accepts_deeper(self):
        query = parse_xpath("//a[.//d]/c")
        view = parse_xpath("//a[b/d]/c")
        branch = next(c for c in query.root.children if c.label == "d")
        assert branch_maps_into(branch, view.root)

    def test_whole_branch_required(self):
        query = parse_xpath("//a[b[c][d]]/e")
        view = parse_xpath("//a[b[c]]/e")
        branch = next(c for c in query.root.children if c.label == "b")
        assert not branch_maps_into(branch, view.root)

    def test_subtree_maps_to(self):
        general = parse_xpath("//a[b]").root
        specific = parse_xpath("//a[b][c]").root
        assert subtree_maps_to(general, specific)
        assert not subtree_maps_to(specific, general)


class TestEvaluate:
    def test_simple_answers(self):
        tree = build_tree(("r", [("a", [("b", ["c"]), "d"]), ("a", ["d"])]))
        answers = evaluate(parse_xpath("//a[b/c]/d"), tree)
        assert len(answers) == 1
        assert next(iter(answers)).label == "d"

    def test_absolute_root_restricts(self):
        tree = build_tree(("r", [("r", ["x"])]))
        assert len(evaluate(parse_xpath("/r"), tree)) == 1
        assert len(evaluate(parse_xpath("//r"), tree)) == 2

    def test_wildcard(self):
        tree = build_tree(("r", ["a", "b"]))
        assert len(evaluate(parse_xpath("/r/*"), tree)) == 2

    def test_attribute_filtering(self):
        tree = build_tree(("r", ["a", "a"]))
        tree.root.children[0].attributes["id"] = "1"
        assert len(evaluate(parse_xpath("//a[@id]"), tree)) == 1
        assert len(evaluate(parse_xpath("//a[@id='1']"), tree)) == 1
        assert len(evaluate(parse_xpath("//a[@id='2']"), tree)) == 0

    def test_numeric_attribute_comparison(self):
        tree = build_tree(("r", ["a", "a"]))
        tree.root.children[0].attributes["n"] = "5"
        tree.root.children[1].attributes["n"] = "11"
        assert len(evaluate(parse_xpath("//a[@n>=10]"), tree)) == 1

    def test_boolean_evaluation(self):
        tree = build_tree(("r", [("a", ["b"])]))
        assert evaluate_boolean(parse_xpath("//a/b"), tree)
        assert not evaluate_boolean(parse_xpath("//a/c"), tree)

    @pytest.mark.parametrize("seed", range(30))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=18, max_depth=4)
        pattern = random_pattern(rng, max_nodes=4)
        assert evaluate(pattern, tree) == brute_force_answers(pattern, tree)

    def test_relative_evaluation(self):
        tree = build_tree(("r", [("a", [("b", ["c"]), "d"])]))
        a = tree.root.children[0]
        sub = parse_xpath("//a[b/c]/d").subtree_at(parse_xpath("//a[b/c]/d").root)
        # anchored at the concrete a node
        assert satisfies_relative(sub, a)
        answers = evaluate_relative(sub, a)
        assert {n.label for n in answers} == {"a"}

    def test_relative_respects_anchor_label(self):
        tree = build_tree(("r", [("a", ["b"])]))
        pattern = parse_xpath("//x[b]").subtree_at(parse_xpath("//x[b]").root)
        assert not satisfies_relative(pattern, tree.root.children[0])


class TestContainment:
    @pytest.mark.parametrize(
        "containee,container,expected",
        [
            ("/a/b", "/a/b", True),
            ("/a/b", "/a//b", True),
            ("/a//b", "/a/b", False),
            ("/a/b", "//b", True),
            ("/a/*/b", "/a//b", True),
            ("//a[b][c]", "//a[b]", True),
            ("//a[b]", "//a[b][c]", False),
            ("//a", "/a", False),
            ("/a", "//a", True),
            ("/a/b/c", "/a/*/c", True),
            ("/a/*/c", "/a/b/c", False),
        ],
    )
    def test_classic_cases(self, containee, container, expected):
        assert contains(
            parse_xpath(containee), parse_xpath(container)
        ) is expected

    def test_containment_without_structural_hom_is_detected(self):
        """Homomorphism is sound: hom ⇒ containment (checked on random
        pattern pairs via the exact canonical-model test)."""
        rng = random.Random(3)
        checked = 0
        for _ in range(120):
            first = random_pattern(rng, max_nodes=4)
            second = random_pattern(rng, max_nodes=4)
            if has_homomorphism(second, first):
                checked += 1
                assert contains(first, second), (
                    first.to_xpath(), second.to_xpath()
                )
        assert checked > 5

    def test_wildcard_run_bound(self):
        assert wildcard_run_bound(parse_xpath("/a/b")) == 1
        assert wildcard_run_bound(parse_xpath("/a/*/*/b")) == 3
        assert wildcard_run_bound(parse_xpath("/a[*/*]/*")) == 3

    def test_equivalent(self):
        assert equivalent(parse_xpath("/s/*//t"), parse_xpath("/s//*/t"))
        assert not equivalent(parse_xpath("/a/b"), parse_xpath("/a//b"))


class TestMinimize:
    def test_removes_absorbed_branch(self):
        pattern = parse_xpath("//a[b][b/c]/d")
        minimized = minimize(pattern.copy())
        # [b] is implied by [b/c]
        assert minimized.size() == 4

    def test_keeps_distinct_branches(self):
        pattern = parse_xpath("//a[b][c]/d")
        assert minimize(pattern.copy()).size() == pattern.size()

    def test_descendant_branch_absorption(self):
        pattern = parse_xpath("//a[.//c][b/c]/d")
        minimized = minimize(pattern.copy())
        assert minimized.size() == 4

    def test_never_removes_answer_spine(self):
        pattern = parse_xpath("//a[b]/b")  # branch b duplicates spine b
        minimized = minimize(pattern.copy())
        assert minimized.ret.label == "b"
        assert minimized == parse_xpath("//a/b")

    def test_minimization_preserves_equivalence(self):
        for expr in ["//a[b][b/c]/d", "//a[.//c][b/c]/d", "//a[b][b]/c"]:
            pattern = parse_xpath(expr)
            minimized = minimized_copy(pattern)
            assert equivalent(pattern, minimized)

    def test_minimized_copy_leaves_input(self):
        pattern = parse_xpath("//a[b][b/c]/d")
        size = pattern.size()
        minimized_copy(pattern)
        assert pattern.size() == size

    def test_idempotent(self):
        pattern = minimize(parse_xpath("//a[b][b/c][b/c/d]/e"))
        again = minimized_copy(pattern)
        assert again == pattern


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_evaluator_vs_brute_force(seed):
    rng = random.Random(seed)
    tree = random_tree(rng, max_nodes=14, max_depth=4)
    pattern = random_pattern(rng, max_nodes=4)
    assert evaluate(pattern, tree) == brute_force_answers(pattern, tree)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_hom_soundness(seed):
    """hom(P→Q) implies Q ⊑ P (exact containment check)."""
    rng = random.Random(seed)
    general = random_pattern(rng, max_nodes=4)
    specific = random_pattern(rng, max_nodes=4)
    if has_homomorphism(general, specific):
        assert contains(specific, general)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_path_hom_completeness(seed):
    """For *wildcard-free* path containers, hom is complete (the regime
    of Theorem 3.1 / Miklau-Suciu): containment implies homomorphism.
    Wildcards break completeness even for paths — see
    ``test_known_wildcard_incompleteness``."""
    rng = random.Random(seed)
    container = random_pattern(rng, max_nodes=3, wildcards=False)
    containee = random_pattern(rng, max_nodes=3)
    if not container.is_path():
        return
    if contains(containee, container):
        assert has_homomorphism(container, containee), (
            container.to_xpath(), containee.to_xpath()
        )


@pytest.mark.parametrize(
    "containee,container",
    [
        # all-wildcard containers mean "depth ≥ k"
        ("//d/*", "/*"),
        ("/a//b", "/*/*"),
        # a /-* branch is implied by any descendant
        ("/b[.//b]", "/b[*]"),
        ("/b//c", "/b/*"),
    ],
)
def test_known_wildcard_incompleteness(containee, container):
    """Documented corners where containment holds with no homomorphism
    (wildcard degeneracies).  The VFILTER invariant is stated against
    homomorphism — the relation the whole pipeline uses — so these do
    not affect the system; they are pinned here so a future 'fix' to the
    homomorphism cannot silently change semantics."""
    assert contains(parse_xpath(containee), parse_xpath(container))
    assert not has_homomorphism(
        parse_xpath(container), parse_xpath(containee)
    )
