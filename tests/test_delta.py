"""Delta-propagation maintenance (repro.delta).

Covers the pieces the coarse maintenance tests don't:

* resolver classification — untouched / patchable / content-only /
  branching-rebuild verdicts on hand-built documents, plus the
  fallback-predicate soundness property (a view resolved *untouched*
  really keeps its exact answer set across the edit);
* patcher byte-identity — patched fragment payloads equal a fresh
  re-materialization byte for byte, and the report proves the scoped
  *patch* path (not a hidden rebuild) produced them;
* scoped plan-cache invalidation — the satellite regression for the old
  double-``_invalidate_plans`` edit path: one counted invalidation per
  edit, plans over untouched views stay warm, assume-all plans (MN, no
  filter provenance) always drop;
* maintenance linearizability under the epoch registry — concurrent
  readers see the pre-edit or post-edit answer, never a mix, and
  maintenance publishes **no** epoch;
* a hypothesis property: random edit sequences keep every materialized
  view byte-identical to ground truth (XMVR_CHECK=1 makes the editor
  self-check every patch on top of the explicit asserts here).
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MaterializedViewSystem, encode_tree
from repro.delta import DocumentEditor, SubtreeDelta, resolve_affected
from repro.matching import evaluate
from repro.service.engine import SnapshotEngine
from repro.storage.serialize import encode_dewey, encode_fragment
from repro.xmltree import XMLNode, build_tree

from conftest import random_pattern, random_tree


def _system(views: dict[str, str]) -> MaterializedViewSystem:
    doc = encode_tree(build_tree(
        ("b", ["t", ("s", ["t", "p"]), ("s", ["t", "p", ("f", ["i"])])])
    ))
    system = MaterializedViewSystem(doc)
    for view_id, expression in views.items():
        system.register_view(view_id, expression)
    return system


def _first_section(system: MaterializedViewSystem) -> XMLNode:
    return system.document.tree.root.children[1]


def _expected_payloads(system: MaterializedViewSystem, view) -> list[bytes]:
    answers = evaluate(view.pattern, system.document.tree)
    entries = sorted(
        ((n.dewey, n) for n in answers if n.dewey is not None),
        key=lambda item: item[0],
    )
    return [encode_dewey(code) + encode_fragment(node) for code, node in entries]


def _stored_payloads(system: MaterializedViewSystem, view_id: str) -> list[bytes]:
    return [f.payload for f in system.fragments.fragments(view_id)]


def _view_modes(report) -> dict[str, str]:
    return {entry.view_id: entry.mode for entry in report.views}


# ----------------------------------------------------------------------
# resolver classification
# ----------------------------------------------------------------------
class TestResolver:
    def test_unrelated_path_view_untouched(self):
        system = _system({"VT": "//b/t", "VP": "//s/p"})
        parent = _first_section(system)
        delta = SubtreeDelta.for_insert(parent, XMLNode("t"))
        epoch = system.current_epoch()
        affected = resolve_affected(
            delta, epoch.vfilter, system.fragments, list(epoch.materialized)
        )
        # (b, s, t) matches neither view's leaf paths and no stored
        # fragment of either view contains the insertion anchor.
        assert affected.impacts == ()
        assert set(affected.untouched) == {"VT", "VP"}

    def test_path_view_with_answer_in_subtree_is_patchable(self):
        system = _system({"VP": "//s/p"})
        parent = _first_section(system)
        delta = SubtreeDelta.for_insert(parent, XMLNode("p"))
        epoch = system.current_epoch()
        affected = resolve_affected(
            delta, epoch.vfilter, system.fragments, list(epoch.materialized)
        )
        (impact,) = affected.impacts
        assert impact.view.view_id == "VP"
        assert impact.mode == "patch" and impact.splice
        assert impact.reason == "answers-in-subtree"

    def test_branching_pattern_rebuilds(self):
        system = _system({"VB": "//s[t]/p"})
        parent = _first_section(system)
        delta = SubtreeDelta.for_insert(parent, XMLNode("p"))
        epoch = system.current_epoch()
        affected = resolve_affected(
            delta, epoch.vfilter, system.fragments, list(epoch.materialized)
        )
        (impact,) = affected.impacts
        assert impact.mode == "rebuild"
        assert impact.reason == "branching-pattern"

    def test_edit_inside_fragment_is_an_answer_hit(self):
        system = _system({"VP": "//s/p"})
        answer = system.direct_codes("//s/p")[0]
        node = system.document.node_by_code(answer)
        delta = SubtreeDelta.for_insert(node, XMLNode("t"))
        epoch = system.current_epoch()
        affected = resolve_affected(
            delta, epoch.vfilter, system.fragments, list(epoch.materialized)
        )
        (impact,) = affected.impacts
        # The VFILTER NFA accepts containment extensions — (b, s, p, t)
        # extends the view path — so an edit strictly inside a stored
        # fragment classifies as a patchable answer hit, and the
        # patcher's overlap rule re-encodes the grown fragment.
        assert impact.mode == "patch" and impact.splice
        assert impact.reason == "answers-in-subtree"

    @pytest.mark.parametrize("seed", range(8))
    def test_untouched_verdict_is_sound(self, seed):
        """Fallback-predicate soundness: any view the resolver calls
        untouched keeps its exact answer set across the edit."""
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=30, max_depth=4)
        system = MaterializedViewSystem(encode_tree(tree))
        for index in range(6):
            system.register_view(f"v{index}", random_pattern(rng, max_nodes=4))
        editor = DocumentEditor(system)
        for _ in range(3):
            nodes = list(system.document.tree.iter_nodes())
            before = {
                view.view_id: set(system.fragments.codes(view.view_id))
                for view in system.materialized_views()
            }
            if rng.random() < 0.6 or len(nodes) < 4:
                parent = rng.choice(nodes)
                child = XMLNode(rng.choice("abcde"))
                if rng.random() < 0.5:
                    child.new_child(rng.choice("abcde"))
                report = editor.insert_subtree(parent.dewey, child)
            else:
                victim = rng.choice([n for n in nodes if n.parent is not None])
                report = editor.delete_subtree(victim.dewey)
            for view_id in report.skipped_views:
                view = next(
                    v
                    for v in system.materialized_views()
                    if v.view_id == view_id
                )
                fresh = {
                    n.dewey
                    for n in evaluate(view.pattern, system.document.tree)
                }
                assert fresh == before[view_id], view.to_xpath()


# ----------------------------------------------------------------------
# patcher byte-identity
# ----------------------------------------------------------------------
class TestPatcher:
    def test_insert_splice_is_byte_identical(self):
        system = _system({"VP": "//s/p"})
        editor = DocumentEditor(system)
        report = editor.insert_subtree(_first_section(system).dewey, XMLNode("p"))
        assert _view_modes(report) == {"VP": "patched"}
        (view,) = system.materialized_views()
        assert _stored_payloads(system, "VP") == _expected_payloads(system, view)

    def test_delete_range_drop_is_byte_identical(self):
        system = _system({"VP": "//s/p"})
        editor = DocumentEditor(system)
        victim = system.direct_codes("//s/p")[0]
        report = editor.delete_subtree(victim)
        assert _view_modes(report) == {"VP": "patched"}
        (view,) = system.materialized_views()
        payloads = _stored_payloads(system, "VP")
        assert payloads == _expected_payloads(system, view)
        assert len(payloads) == 1

    def test_in_fragment_insert_reencodes_live_fragment(self):
        # f → i is schema-admitted, so growing an existing f-fragment
        # stays on the delta path; the patcher must re-encode the
        # overlapped fragment from the live tree, not reuse stale bytes.
        system = _system({"VF": "//s/f"})
        editor = DocumentEditor(system)
        answer = system.direct_codes("//s/f")[0]
        report = editor.insert_subtree(answer, XMLNode("i"))
        assert not report.full_reencode
        assert _view_modes(report) == {"VF": "patched"}
        (view,) = system.materialized_views()
        assert _stored_payloads(system, "VF") == _expected_payloads(system, view)
        # The grown fragment is visible to compensating evaluation.
        outcome = system.try_answer("//s/f[i]")
        assert outcome is not None and outcome.codes == [answer]

    def test_untouched_view_payloads_not_rewritten(self):
        system = _system({"VT": "//b/t", "VP": "//s/p"})
        editor = DocumentEditor(system)
        before = _stored_payloads(system, "VT")
        report = editor.insert_subtree(_first_section(system).dewey, XMLNode("p"))
        assert "VT" in report.skipped_views
        assert _stored_payloads(system, "VT") == before


# ----------------------------------------------------------------------
# scoped plan-cache invalidation (the double-invalidation regression)
# ----------------------------------------------------------------------
class TestScopedInvalidation:
    def test_exactly_one_scoped_invalidation_per_edit(self):
        system = _system({"VP": "//s/p"})
        editor = DocumentEditor(system)
        editor.insert_subtree(_first_section(system).dewey, XMLNode("p"))
        stats = system.stats()["plan_cache"]
        assert stats["scoped_invalidations"] == 1
        assert stats["invalidations"] == 0  # no blanket clear on the edit path
        editor.delete_subtree(system.direct_codes("//s/p")[0])
        stats = system.stats()["plan_cache"]
        assert stats["scoped_invalidations"] == 2
        assert stats["invalidations"] == 0

    def test_plans_over_untouched_views_stay_warm(self):
        system = _system({"VT": "//b/t", "VP": "//s/p"})
        editor = DocumentEditor(system)
        system.answer("//b/t")
        system.answer("//s/p")
        report = editor.insert_subtree(
            _first_section(system).dewey, XMLNode("p")
        )
        assert report.affected_views == ["VP"]
        assert report.plans_dropped >= 1 and report.plans_retained >= 1
        warm = system.answer("//b/t")
        assert warm.plan_cache_hit
        refreshed = system.answer("//s/p")
        assert not refreshed.plan_cache_hit
        assert refreshed.codes == system.direct_codes("//s/p")

    def test_edit_affecting_nothing_retains_every_filtered_plan(self):
        system = _system({"VT": "//b/t", "VP": "//s/p"})
        editor = DocumentEditor(system)
        system.answer("//b/t")
        system.answer("//s/p")
        # (b, s, t) hits neither view; scoped invalidation drops nothing.
        report = editor.insert_subtree(_first_section(system).dewey, XMLNode("t"))
        assert report.affected_views == []
        assert report.plans_dropped == 0
        assert system.answer("//b/t").plan_cache_hit
        assert system.answer("//s/p").plan_cache_hit

    def test_assume_all_plans_always_drop(self):
        # MN plans carry no VFILTER provenance — their dependency set is
        # unknowable, so every edit must drop them even when it touches
        # no view at all.
        system = _system({"VT": "//b/t", "VP": "//s/p"})
        editor = DocumentEditor(system)
        system.answer("//s/p", "MN")
        report = editor.insert_subtree(_first_section(system).dewey, XMLNode("t"))
        assert report.affected_views == []
        assert report.plans_dropped == 1
        stale = system.answer("//s/p", "MN")
        assert not stale.plan_cache_hit
        assert stale.codes == system.direct_codes("//s/p")

    def test_full_reencode_still_clears_everything(self):
        system = _system({"VT": "//b/t", "VP": "//s/p"})
        editor = DocumentEditor(system)
        system.answer("//b/t")
        report = editor.insert_subtree(
            _first_section(system).dewey, XMLNode("zzz")
        )
        assert report.full_reencode
        outcome = system.answer("//b/t")
        assert not outcome.plan_cache_hit
        assert outcome.codes == system.direct_codes("//b/t")


# ----------------------------------------------------------------------
# linearizability under the epoch registry
# ----------------------------------------------------------------------
class TestLinearizability:
    def test_maintenance_publishes_no_epoch(self):
        system = _system({"VP": "//s/p"})
        editor = DocumentEditor(system)
        seq_before = system.current_epoch().seq
        editor.insert_subtree(_first_section(system).dewey, XMLNode("p"))
        # Scoped invalidation only works because the epoch (and its
        # plan cache) survives the edit.
        assert system.current_epoch().seq == seq_before

    def test_concurrent_readers_see_pre_or_post_edit_answers(self):
        system = _system({"VP": "//s/p"})
        engine = SnapshotEngine(system)
        editor = DocumentEditor(system)
        query = "//s/p"
        pre = set(system.answer(query).codes)
        results: list[set] = []
        errors: list[BaseException] = []
        start = threading.Barrier(9)

        def read() -> None:
            try:
                start.wait()
                for _ in range(12):
                    results.append(set(engine.answer(query).codes))
            except BaseException as error:  # pragma: no cover - diagnostics
                errors.append(error)

        def write() -> None:
            try:
                start.wait()
                target = _first_section(system).dewey

                def edit(target_system):
                    return editor.insert_subtree(target, XMLNode("p"))

                engine.maintain(edit)
            except BaseException as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [threading.Thread(target=read) for _ in range(8)]
        threads.append(threading.Thread(target=write))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        post = set(system.answer(query).codes)
        assert len(post) == len(pre) + 1
        for observed in results:
            assert observed in (pre, post)


# ----------------------------------------------------------------------
# stats surfacing
# ----------------------------------------------------------------------
def test_maintenance_stats_surface_in_system_stats():
    system = _system({"VP": "//s/p"})
    editor = DocumentEditor(system)
    editor.insert_subtree(_first_section(system).dewey, XMLNode("p"))
    maintenance = system.stats()["maintenance"]
    assert maintenance["repro_maintenance_total"]["insert"] == 1.0
    assert maintenance["repro_maintenance_ops_total"]["insert|delta"] == 1.0
    assert maintenance["repro_maintenance_views_total"]["patched"] == 1.0


# ----------------------------------------------------------------------
# property: random edit sequences keep every view byte-identical
# ----------------------------------------------------------------------
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(0, 10**9))
def test_random_edit_sequences_keep_views_byte_identical(seed):
    rng = random.Random(seed)
    tree = random_tree(rng, max_nodes=25, max_depth=4)
    system = MaterializedViewSystem(encode_tree(tree))
    for index in range(4):
        system.register_view(f"v{index}", random_pattern(rng, max_nodes=4))
    editor = DocumentEditor(system)
    for _ in range(3):
        nodes = list(system.document.tree.iter_nodes())
        if rng.random() < 0.6 or len(nodes) < 4:
            parent = rng.choice(nodes)
            child = XMLNode(rng.choice("abcd"))
            if rng.random() < 0.4:
                child.new_child(rng.choice("abcd"))
            editor.insert_subtree(parent.dewey, child)
        else:
            victim = rng.choice([n for n in nodes if n.parent is not None])
            editor.delete_subtree(victim.dewey)
        for view in system.materialized_views():
            assert _stored_payloads(
                system, view.view_id
            ) == _expected_payloads(system, view), view.to_xpath()
        query = random_pattern(rng, max_nodes=4)
        outcome = system.try_answer(query)
        if outcome is not None:
            assert outcome.codes == system.direct_codes(query)
