"""Telemetry subsystem (repro.obs) and its serving-pipeline wiring.

Covers the metrics registry primitives, the span tracer, the slow-
query log and the Prometheus exposition round trip in isolation, then
the integration contracts the observability PR promises: ``stats()``
reads the same cells ``/metrics`` exposes (stage sums identical, not
merely close), a query driven through the scheduler leaves a full span
tree in the slow log, scheduler rejections increment the new rejection
counters, and a stats snapshot stays internally consistent under
concurrent epoch swaps.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.system import AnswerOutcome, MaterializedViewSystem
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    ExpositionError,
    Histogram,
    ManualClock,
    MetricsRegistry,
    NULL_TRACE,
    SlowQueryLog,
    SlowQueryRecord,
    Telemetry,
    Tracer,
    current_trace,
    parse_exposition,
    render_prometheus,
)
from repro.service import (
    AdmissionRejectedError,
    DeadlineExceededError,
    QueryScheduler,
    SnapshotEngine,
    error_payload,
)
from repro.workload.xmark import generate_xmark
from repro.xmltree.builder import encode_tree


# ----------------------------------------------------------------------
# registry primitives
# ----------------------------------------------------------------------
def test_counter_inc_value_and_labels():
    counter = Counter("repro_things_total", "things", ("kind",))
    counter.inc(1.0, "a")
    counter.inc(2.5, "a")
    counter.inc(1.0, "b")
    assert counter.value("a") == pytest.approx(3.5)
    assert counter.value("b") == pytest.approx(1.0)
    assert counter.value("never") == 0.0
    with pytest.raises(ValueError):
        counter.inc(-1.0, "a")
    with pytest.raises(ValueError):
        counter.inc(1.0)  # label arity mismatch


def test_registry_get_or_create_is_idempotent_and_typed():
    registry = MetricsRegistry()
    first = registry.counter("repro_x_total", "x", ("k",))
    again = registry.counter("repro_x_total", "x", ("k",))
    assert first is again
    with pytest.raises(ValueError):
        registry.histogram("repro_x_total", "now a histogram")
    with pytest.raises(ValueError):
        registry.counter("repro_x_total", "x", ("other",))


def test_gauge_callback_and_set_are_exclusive():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_depth", "depth", fn=lambda: 4.0)
    assert gauge.value() == 4.0
    with pytest.raises(ValueError):
        gauge.set(2.0)
    plain = registry.gauge("repro_level", "level")
    plain.set(7.5)
    assert plain.value() == pytest.approx(7.5)


def test_histogram_buckets_sum_and_percentiles():
    histogram = Histogram(
        "repro_lat_seconds", "latency", buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.05, 0.05, 0.5, 2.0):
        histogram.observe(value)
    view = histogram.view()
    assert view.count == 5
    assert view.sum == pytest.approx(2.605)
    assert view.counts == (1, 2, 1, 1)  # 3 bounds + overflow
    assert view.percentile(0.5) <= 0.1
    assert view.percentile(1.0) == 1.0  # overflow reports last bound
    assert histogram.sums() == {(): pytest.approx(2.605)}


def test_histogram_exact_sums_per_label_set():
    histogram = Histogram("repro_stage_seconds", "stages", ("stage",))
    histogram.observe(0.25, "parse")
    histogram.observe(0.5, "parse")
    histogram.observe(1.25, "join")
    assert histogram.sums() == {
        ("parse",): pytest.approx(0.75),
        ("join",): pytest.approx(1.25),
    }


# ----------------------------------------------------------------------
# clock / tracer / slow log
# ----------------------------------------------------------------------
def test_manual_clock_advances_deterministically():
    clock = ManualClock(start=10.0, wall_start=1000.0)
    began = clock.monotonic()
    clock.advance(2.5)
    assert clock.monotonic() - began == pytest.approx(2.5)
    assert clock.wall() == pytest.approx(1002.5)


def test_trace_spans_nest_and_tree_rebuilds():
    clock = ManualClock()
    tracer = Tracer(clock, sample_every=1)
    trace = tracer.trace()
    with trace.span("serve") as root:
        clock.advance(0.1)
        with trace.span("answer", strategy="HV"):
            clock.advance(0.2)
            with trace.span("parse"):
                clock.advance(0.05)
        root.attributes["done"] = True
    tree = trace.span_tree()
    assert [entry["name"] for entry in tree] == ["serve"]
    serve = tree[0]
    assert serve["duration_seconds"] == pytest.approx(0.35)
    assert serve["attributes"]["done"] is True
    (answer,) = serve["children"]
    assert answer["name"] == "answer"
    assert answer["attributes"]["strategy"] == "HV"
    assert [child["name"] for child in answer["children"]] == ["parse"]


def test_tracer_samples_one_in_n():
    tracer = Tracer(ManualClock(), sample_every=3)
    sampled = [tracer.trace().sampled for _ in range(6)]
    assert sampled == [True, False, False, True, False, False]
    # Ids are still unique for unsampled traces.
    ids = {tracer.trace().trace_id for _ in range(5)}
    assert len(ids) == 5


def test_unsampled_and_null_traces_are_noops():
    tracer = Tracer(ManualClock(), sample_every=0)
    trace = tracer.trace()
    with trace.span("anything") as span:
        span.attributes["ok"] = 1  # must not blow up
    assert trace.spans == []
    assert current_trace() is NULL_TRACE
    with NULL_TRACE.span("outside"):
        pass
    assert NULL_TRACE.spans == []


def test_trace_activation_scopes_current_trace():
    tracer = Tracer(ManualClock(), sample_every=1)
    trace = tracer.trace()
    with trace.activate():
        assert current_trace() is trace
        with current_trace().span("inner"):
            pass
    assert current_trace() is NULL_TRACE
    assert [span.name for span in trace.spans] == ["inner"]


def _record(trace_id: str, seconds: float) -> SlowQueryRecord:
    return SlowQueryRecord(
        trace_id=trace_id,
        query="//a",
        strategy="HV",
        status="ok",
        total_seconds=seconds,
        wall_time=0.0,
        epoch=1,
        plan_cache_hit=False,
        view_ids=("v1",),
    )


def test_slowlog_keeps_the_slowest():
    log = SlowQueryLog(capacity=2)
    assert log.record(_record("a", 0.10))
    assert log.record(_record("b", 0.30))
    assert log.record(_record("c", 0.20))  # evicts a (fastest)
    assert not log.record(_record("d", 0.05))  # slower residents win
    entries = log.entries()
    assert [entry.trace_id for entry in entries] == ["b", "c"]
    assert log.stats() == {"capacity": 2, "resident": 2, "recorded": 4}
    assert entries[0].as_dict()["view_ids"] == ["v1"]


# ----------------------------------------------------------------------
# exposition round trip
# ----------------------------------------------------------------------
def test_render_parse_roundtrip():
    registry = MetricsRegistry()
    counter = registry.counter("repro_q_total", "queries", ("strategy",))
    counter.inc(3.0, "HV")
    counter.inc(1.0, 'we"ird\\label')
    histogram = registry.histogram(
        "repro_q_seconds", "latency", buckets=(0.1, 1.0)
    )
    histogram.observe(0.05)
    histogram.observe(0.5)
    registry.gauge("repro_live", "liveness", fn=lambda: 1.0)

    payload = render_prometheus(registry.collect())
    families = parse_exposition(payload)
    totals = families["repro_q_total"]
    assert totals.kind == "counter"
    assert totals.value(strategy="HV") == 3.0
    assert totals.value(strategy='we"ird\\label') == 1.0
    latency = families["repro_q_seconds"]
    assert latency.kind == "histogram"
    assert latency.value(name="repro_q_seconds_count") == 2.0
    assert latency.value(name="repro_q_seconds_sum") == pytest.approx(0.55)
    assert latency.value(name="repro_q_seconds_bucket", le="0.1") == 1.0
    assert latency.value(name="repro_q_seconds_bucket", le="+Inf") == 2.0
    assert families["repro_live"].value() == 1.0


@pytest.mark.parametrize("payload", [
    "repro_x 1\n",  # sample before HELP/TYPE
    "# HELP repro_x x\n# TYPE repro_x counter\nrepro_x 1",  # no newline
    ("# HELP repro_x x\n# TYPE repro_x counter\n"
     "repro_x 1\nrepro_x 2\n"),  # duplicate sample
    ("# HELP repro_h h\n# TYPE repro_h histogram\n"
     'repro_h_bucket{le="0.1"} 5\nrepro_h_bucket{le="+Inf"} 3\n'
     "repro_h_sum 1\nrepro_h_count 3\n"),  # non-monotone buckets
])
def test_parse_exposition_rejects_malformed(payload):
    with pytest.raises(ExpositionError):
        parse_exposition(payload)


def test_telemetry_create_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SAMPLE", "5")
    monkeypatch.setenv("REPRO_SLOWLOG_CAPACITY", "3")
    telemetry = Telemetry.create()
    assert telemetry.tracer.sample_every == 5
    assert telemetry.slowlog.capacity == 3
    monkeypatch.setenv("REPRO_TRACE_SAMPLE", "junk")
    assert Telemetry.create().tracer.sample_every == 1


# ----------------------------------------------------------------------
# system integration: stats() on the registry, spans in the pipeline
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_system():
    system = MaterializedViewSystem(
        encode_tree(generate_xmark(scale=0.05, seed=11))
    )
    system.register_views({
        "name": "//item/name",
        "person": "//person/name",
    })
    return system


def test_stats_stage_seconds_equal_histogram_sums(small_system):
    small_system.answer("//item/name")
    small_system.answer("//item/name")  # warm hit
    stats = small_system.stats()
    payload = render_prometheus(small_system.telemetry.registry.collect())
    stage_family = parse_exposition(payload)["repro_stage_seconds"]
    for stage, seconds in stats["stage_seconds"].items():
        exposed = stage_family.value(
            name="repro_stage_seconds_sum", stage=stage
        )
        # Same cells read twice: equality is exact, not approximate.
        assert (exposed or 0.0) == seconds
    assert stats["answers"] >= 2
    assert stats["warm_hits"] >= 1


def test_metrics_exposition_covers_the_catalog(small_system):
    small_system.answer("//person/name")
    families = parse_exposition(
        render_prometheus(small_system.telemetry.registry.collect())
    )
    for name in (
        "repro_stage_seconds",
        "repro_answer_seconds",
        "repro_answers_total",
        "repro_views_registered_total",
        "repro_epoch_swaps_total",
        "repro_epoch_seq",
        "repro_views_materialized",
        "repro_plan_cache_hits",
        "repro_plan_cache_misses",
    ):
        assert name in families, f"{name} missing from /metrics"
    assert families["repro_epoch_swaps_total"].value() >= 2.0
    assert families["repro_views_materialized"].value() == 2.0


def test_answer_records_span_tree_when_traced(small_system):
    trace = small_system.telemetry.tracer.trace()
    with trace.activate():
        small_system.answer("//item/name", "MV")
    names = {span.name for span in trace.spans}
    assert {"answer", "parse", "selection", "rewrite"} <= names
    (root,) = [
        span for span in trace.span_tree() if span["name"] == "answer"
    ]
    assert root["attributes"]["strategy"] == "MV"
    children = {child["name"] for child in root["children"]}
    assert "parse" in children


def test_stats_snapshot_consistent_under_concurrent_swaps():
    system = MaterializedViewSystem(
        encode_tree(generate_xmark(scale=0.05, seed=13))
    )
    system.register_view("name", "//item/name")
    stop = threading.Event()
    failures: list[str] = []

    patterns = ("//item/description", "//person/name", "//item/payment")

    def register_views() -> None:
        index = 0
        while not stop.is_set():
            system.register_view(
                f"extra{index}", patterns[index % len(patterns)]
            )
            index += 1

    def snapshot_stats() -> None:
        last_epoch = 0
        last_lookups = 0
        while not stop.is_set():
            system.answer("//item/name")
            stats = system.stats()
            plan = stats["plan_cache"]
            lookups = plan["hits"] + plan["misses"]
            if stats["epoch"] < last_epoch:
                failures.append("epoch went backwards")
            if lookups < last_lookups:
                failures.append(
                    "cumulative plan-cache counters went backwards "
                    "across an epoch swap"
                )
            if plan["entries"] > plan["maxsize"]:
                failures.append("entries exceed maxsize")
            last_epoch = stats["epoch"]
            last_lookups = lookups
    threads = [
        threading.Thread(target=register_views),
        threading.Thread(target=snapshot_stats),
        threading.Thread(target=snapshot_stats),
    ]
    for thread in threads:
        thread.start()
    import time as _time
    _time.sleep(0.8)
    stop.set()
    for thread in threads:
        thread.join()
    assert failures == []


# ----------------------------------------------------------------------
# scheduler rejection counters + slow log through the service layer
# ----------------------------------------------------------------------
class _StallEngine:
    """Parks every answer on a latch (no ``system`` attribute: the
    scheduler must fall back to building its own telemetry)."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()

    def answer(self, pattern, strategy="HV"):
        self.entered.set()
        assert self.release.wait(timeout=10.0)
        return AnswerOutcome(codes=[], strategy=strategy, epoch_seq=1)


def test_queue_full_rejection_increments_counter_and_retry_after():
    engine = _StallEngine()
    scheduler = QueryScheduler(
        engine, workers=1, queue_limit=1, coalesce=False
    )
    try:
        def occupy() -> None:
            try:
                scheduler.submit("//a/b", timeout=10.0)
            except (AdmissionRejectedError, DeadlineExceededError):
                pass

        threads = [threading.Thread(target=occupy) for _ in range(2)]
        for thread in threads:
            thread.start()
        assert engine.entered.wait(timeout=5.0)
        # Worker busy + queue slot taken: the next admission must bounce.
        deadline = None
        for _ in range(50):
            try:
                scheduler.submit("//c/d", timeout=0.05)
            except AdmissionRejectedError as error:
                deadline = error
                break
            except DeadlineExceededError:
                continue
        assert deadline is not None, "queue never filled"
        assert deadline.retry_after > 0.0
        rejected = scheduler.telemetry.registry.counter(
            "repro_requests_rejected_total", "", ("reason",)
        )
        assert rejected.value("queue_full") >= 1.0
        status, body, headers = error_payload(deadline)
        assert status == 503
        assert float(headers["Retry-After"]) > 0.0
        assert body["retry_after"] == pytest.approx(deadline.retry_after)
    finally:
        engine.release.set()
        scheduler.close()


def test_deadline_rejection_increments_counter_and_retry_after():
    engine = _StallEngine()
    scheduler = QueryScheduler(engine, workers=1, queue_limit=4)
    try:
        with pytest.raises(DeadlineExceededError) as excinfo:
            scheduler.submit("//a/b", timeout=0.05)
        error = excinfo.value
        assert error.retry_after > 0.0
        rejected = scheduler.telemetry.registry.counter(
            "repro_requests_rejected_total", "", ("reason",)
        )
        assert rejected.value("deadline") >= 1.0
        status, body, headers = error_payload(error)
        assert status == 504
        assert float(headers["Retry-After"]) > 0.0
        assert body["retry_after"] == pytest.approx(error.retry_after)
    finally:
        engine.release.set()
        scheduler.close()


def test_slow_query_log_reproduces_the_span_tree(small_system):
    engine = SnapshotEngine(small_system)
    scheduler = QueryScheduler(engine, workers=2)
    slowlog = small_system.telemetry.slowlog
    slowlog.clear()
    try:
        scheduler.submit("//item/name")
        scheduler.submit("//person/name", "MV")
    finally:
        scheduler.close()
    entries = slowlog.entries()
    assert len(entries) == 2
    record = entries[0]  # slowest first
    assert record.trace_id.startswith("query-")
    assert record.total_seconds > 0.0
    assert record.stage_seconds  # per-stage timings captured
    (serve,) = record.spans
    assert serve["name"] == "serve"
    child_names = [child["name"] for child in serve["children"]]
    assert "engine_gate" in child_names
    assert "answer" in child_names
    answer = next(
        child for child in serve["children"] if child["name"] == "answer"
    )
    grandchildren = {child["name"] for child in answer["children"]}
    assert "parse" in grandchildren
