"""Unit tests for the whole-program analysis framework behind rules
L6-L9: the mini-IR and freshness analysis (``analysis/dataflow.py``),
call-graph construction and layering (``analysis/callgraph.py``), and
the interprocedural effect/guarantee/window fixpoints
(``analysis/effects.py``).
"""

import ast
import pickle
import textwrap

from repro.analysis.callgraph import build_project, layer_of
from repro.analysis.dataflow import (
    attr_chain,
    fresh_locals,
    module_name_for,
    solve_fixpoint,
    summarize_module,
)
from repro.analysis.effects import Effect, analyze, classify


def _fn(source: str) -> ast.FunctionDef:
    module = ast.parse(textwrap.dedent(source))
    for node in ast.walk(module):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in snippet")


def _project(files: dict):
    summaries = {}
    for relpath, source in files.items():
        tree = ast.parse(textwrap.dedent(source))
        summaries[relpath] = summarize_module(tree, relpath)
    return build_project(summaries)


def _facts(files: dict):
    return analyze(_project(files))


# ----------------------------------------------------------------------
# dataflow: attr chains, freshness, summaries
# ----------------------------------------------------------------------
def test_attr_chain_resolution():
    expr = ast.parse("self.system.vfilter", mode="eval").body
    assert attr_chain(expr) == ("self", "system", "vfilter")
    call = ast.parse("f(x).y", mode="eval").body
    assert attr_chain(call) is None


def test_fresh_locals_constructor_and_literal():
    function = _fn(
        """
        def build(cls, path):
            system = cls(path)
            names = []
            table = {}
            return system, names, table
        """
    )
    assert {"system", "names", "table"} <= fresh_locals(function)


def test_fresh_locals_excludes_params_and_tainted_rebinding():
    function = _fn(
        """
        def build(self, seed):
            fresh = []
            fresh = seed
            return fresh
        """
    )
    names = fresh_locals(function)
    assert "seed" not in names
    assert "fresh" not in names  # rebound to a non-fresh value


def test_fresh_locals_excludes_loop_targets():
    function = _fn(
        """
        def walk(self, views):
            for view in views:
                view.tag = 1
        """
    )
    assert "view" not in fresh_locals(function)


def test_module_name_for_drops_src_and_init():
    assert module_name_for("src/repro/core/system.py") == "repro.core.system"
    assert module_name_for("src/repro/xpath/__init__.py") == "repro.xpath"
    assert module_name_for("core/maintenance.py") == "core.maintenance"


def test_summarize_module_records_functions_imports_classes():
    tree = ast.parse(
        textwrap.dedent(
            """
            import json
            from repro.xpath import pattern as pat

            class Store:
                def put(self, key):
                    self._data[key] = 1

            def top(value):
                return value
            """
        )
    )
    summary = summarize_module(tree, "src/repro/storage/kv.py")
    assert summary.module == "repro.storage.kv"
    assert "Store" in summary.class_names
    names = {fn.name for fn in summary.functions}
    assert {"put", "top"} <= names
    targets = {imp.target for imp in summary.imports}
    assert "json" in targets
    assert any(target.startswith("repro.xpath") for target in targets)


def test_function_summaries_pickle_roundtrip():
    # The fact cache persists summaries with pickle; the IR must survive.
    tree = ast.parse(
        textwrap.dedent(
            """
            class XMVRSystem:
                def register(self, view):
                    self._views[view.view_id] = view
                    try:
                        self._persist(view)
                    finally:
                        self._invalidate_plans()
            """
        )
    )
    summary = summarize_module(tree, "core/system.py")
    clone = pickle.loads(pickle.dumps(summary))
    assert clone.module == summary.module
    assert [fn.name for fn in clone.functions] == ["register"]


def test_solve_fixpoint_transitive_reachability():
    edges = {"a": ["b"], "b": ["c"], "c": [], "d": ["a"]}

    def transfer(node, lookup):
        reached = set(edges[node])
        for successor in edges[node]:
            reached |= lookup(successor)
        return frozenset(reached)

    solution = solve_fixpoint(list(edges), frozenset(), transfer)
    assert solution["d"] == {"a", "b", "c"}
    assert solution["c"] == frozenset()


# ----------------------------------------------------------------------
# callgraph: layering and call resolution
# ----------------------------------------------------------------------
def test_layer_of_ranks():
    assert layer_of("repro.obs.registry") == ("obs", 1)
    assert layer_of("repro.xmltree.tree") == ("xmltree", 2)
    assert layer_of("repro.core.system") == ("core", 6)
    assert layer_of("repro.analysis.engine") == ("analysis", 7)
    assert layer_of("repro.workload.gen") == ("workload", 7)
    assert layer_of("repro.bench.run") == ("bench", 8)
    assert layer_of("outside.package") is None


def test_resolve_self_method_call():
    project = _project(
        {
            "core/system.py": """
                class XMVRSystem:
                    def _admit(self, view):
                        return view

                    def register(self, view):
                        return self._admit(view)
            """
        }
    )
    callees = {
        callee for _, callee in project.callees("core.system:XMVRSystem.register")
    }
    assert "core.system:XMVRSystem._admit" in callees


def test_resolve_imported_module_alias():
    project = _project(
        {
            "core/system.py": """
                from core import helpers

                def run(value):
                    return helpers.tidy(value)
            """,
            "core/helpers.py": """
                def tidy(value):
                    return value
            """,
        }
    )
    callees = {callee for _, callee in project.callees("core.system:run")}
    assert "core.helpers:tidy" in callees


def test_resolve_from_import_of_function():
    project = _project(
        {
            "core/system.py": """
                from core.helpers import tidy

                def run(value):
                    return tidy(value)
            """,
            "core/helpers.py": """
                def tidy(value):
                    return value
            """,
        }
    )
    callees = {callee for _, callee in project.callees("core.system:run")}
    assert "core.helpers:tidy" in callees


def test_unresolved_external_calls_have_no_edges():
    project = _project(
        {
            "core/system.py": """
                import json

                def run(value):
                    return json.dumps(value)
            """
        }
    )
    assert list(project.callees("core.system:run")) == []


# ----------------------------------------------------------------------
# effects: lattice, classification, fixpoints
# ----------------------------------------------------------------------
def test_effect_classification():
    assert classify(Effect()) == "pure"
    assert classify(Effect(reads=True)) == "reads-state"
    assert classify(Effect(mutates=True, reads=True)) == "mutates-state"
    assert Effect().cache_safe
    assert Effect(reads=True).cache_safe
    assert not Effect(clock=True).cache_safe
    assert not Effect(io=True).cache_safe


def test_effects_propagate_through_calls():
    facts = _facts(
        {
            "core/system.py": """
                import time

                class XMVRSystem:
                    def _stamp(self):
                        return time.time()

                    def _canon(self, query):
                        return "/".join(sorted(query))

                    def timed(self):
                        return self._stamp()
            """
        }
    )
    assert facts.effect_of("core.system:XMVRSystem._stamp").clock
    # The clock effect flows to the caller through the fixpoint.
    assert facts.effect_of("core.system:XMVRSystem.timed").clock
    assert facts.effect_of("core.system:XMVRSystem._canon").cache_safe


def test_memo_attribute_writes_are_not_mutations():
    facts = _facts(
        {
            "core/system.py": """
                class XMVRSystem:
                    def lookup(self, key):
                        self._stats_hits = self._stats_hits + 1
                        return self._cache_entries.get(key)
            """
        }
    )
    effect = facts.effect_of("core.system:XMVRSystem.lookup")
    assert not effect.mutates
    assert classify(effect) == "reads-state"


def test_guaranteed_set_closes_over_helpers():
    facts = _facts(
        {
            "core/system.py": """
                class XMVRSystem:
                    def _admit(self, view):
                        self._views[view.view_id] = view
                        self._invalidate_plans()

                    def register(self, view):
                        self._admit(view)
                        return view
            """
        }
    )
    assert "core.system:XMVRSystem._admit" in facts.guaranteed
    assert "core.system:XMVRSystem.register" in facts.guaranteed


def test_mutates_answering_is_reachability_closed():
    facts = _facts(
        {
            "core/system.py": """
                class XMVRSystem:
                    def _low(self):
                        self._materialized.append(1)

                    def _mid(self):
                        self._low()

                    def refresh(self):
                        self._mid()
            """
        }
    )
    for name in ("_low", "_mid", "refresh"):
        assert f"core.system:XMVRSystem.{name}" in facts.mutates_answering
    assert "core.system:XMVRSystem.refresh" not in facts.guaranteed


def test_mutation_witness_names_the_call_path():
    facts = _facts(
        {
            "core/system.py": """
                class XMVRSystem:
                    def _low(self):
                        self._materialized.append(1)

                    def refresh(self):
                        self._low()
            """
        }
    )
    assert facts.mutation_witness("core.system:XMVRSystem.refresh") == ["_low"]


def test_windows_detects_raise_in_the_mutated_region():
    facts = _facts(
        {
            "core/system.py": """
                class XMVRSystem:
                    def tag(self, view):
                        self._views[view.view_id] = view
                        if not view.ok:
                            raise ValueError("bad")
                        self._invalidate_plans()
            """
        }
    )
    windows = facts.windows("core.system:XMVRSystem.tag")
    assert len(windows) == 1


def test_windows_clean_when_invalidation_comes_first():
    facts = _facts(
        {
            "core/system.py": """
                class XMVRSystem:
                    def tag(self, view):
                        self._invalidate_plans()
                        self._views[view.view_id] = view
                        if not view.ok:
                            raise ValueError("bad")
            """
        }
    )
    assert facts.windows("core.system:XMVRSystem.tag") == []


def test_entry_points_cover_watched_classes_and_maintenance():
    facts = _facts(
        {
            "core/system.py": """
                class XMVRSystem:
                    def answer(self, query):
                        return query

                    def _private(self):
                        return None
            """,
            "core/maintenance.py": """
                def rebuild(system):
                    return system
            """,
            "core/other.py": """
                def helper(value):
                    return value
            """,
        }
    )
    names = {fqname for fqname, _ in facts.entry_points()}
    assert "core.system:XMVRSystem.answer" in names
    assert "core.maintenance:rebuild" in names
    assert "core.system:XMVRSystem._private" not in names
    assert "core.other:helper" not in names
