"""Whole-program rules L6-L9 plus the engine features that ship with
them: the fact cache, `--baseline` ratchet files, SARIF output,
`--explain`, rule-range selection, and lintcli edge cases.

Every rule gets true-positive fixtures (seeded defects that must fire)
and false-positive fixtures (compliant code that must stay clean —
each one a pattern the analysis could naively flag).
"""

import json
import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis import engine
from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    LintError,
    all_rules,
    apply_baseline,
    baseline_counts,
    lint_paths,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.analysis.lintcli import explain_rule, main as lint_main


def _lint_snippet(tmp_path: Path, relpath: str, source: str, select=None):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], all_rules(select), root=tmp_path)


def _lint_tree(tmp_path: Path, files: dict, select=None):
    """Write several files, then lint the whole tree as one project."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path], all_rules(select), root=tmp_path)


def _rules_hit(violations):
    return {violation.rule for violation in violations}


# ----------------------------------------------------------------------
# L6 — interprocedural invalidation
# ----------------------------------------------------------------------
L6_HELPER_MUTATES = """
    class XMVRSystem:
        def _stash(self, view):
            self._views[view.view_id] = view

        def adopt(self, view):
            self._stash(view)
            return view
"""

L6_TWO_HOPS = """
    class MaterializedViewSystem:
        def _low(self):
            self._materialized.append(1)

        def _mid(self):
            self._low()

        def refresh(self):
            self._mid()
"""

L6_MAINTENANCE_ENTRY = """
    def rebuild(system, views):
        for view in views:
            system._views[view.view_id] = view
        return system
"""

L6_FRESH_REOPEN = """
    class MaterializedViewSystem:
        @classmethod
        def reopen(cls, path):
            system = cls(path)
            system._views["x"] = 1
            system._materialized.append(2)
            return system
"""

L6_GUARANTEED_CHAIN = """
    class XMVRSystem:
        def _admit(self, view):
            self._views[view.view_id] = view
            self._invalidate_plans()
            return True

        def register(self, view):
            self.fragments.materialize(view.view_id, [])
            return self._admit(view)
"""

L6_READ_ONLY_ENTRY = """
    class XMVRSystem:
        def describe(self, view_id):
            return self._views[view_id].pattern
"""


def test_l6_fires_when_private_helper_mutates(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/system.py", L6_HELPER_MUTATES, ["L6"]
    )
    assert _rules_hit(violations) == {"L6"}
    assert "adopt" in violations[0].message
    # The diagnostic names the mutating callee.
    assert "_stash" in violations[0].message


def test_l6_traces_mutation_two_calls_deep(tmp_path):
    violations = _lint_snippet(tmp_path, "core/system.py", L6_TWO_HOPS, ["L6"])
    assert _rules_hit(violations) == {"L6"}
    assert "refresh" in violations[0].message


def test_l6_watches_maintenance_module_functions(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/maintenance.py", L6_MAINTENANCE_ENTRY, ["L6"]
    )
    assert _rules_hit(violations) == {"L6"}
    assert "rebuild" in violations[0].message


def test_l6_accepts_mutation_of_freshly_built_system(tmp_path):
    # The reopen pattern: every write lands on an object this function
    # just constructed, so live answering state is untouched.
    assert (
        _lint_snippet(tmp_path, "core/system.py", L6_FRESH_REOPEN, ["L6"])
        == []
    )


def test_l6_accepts_guarantee_through_helper(tmp_path):
    assert (
        _lint_snippet(tmp_path, "core/system.py", L6_GUARANTEED_CHAIN, ["L6"])
        == []
    )


def test_l6_accepts_read_only_entry_points(tmp_path):
    assert (
        _lint_snippet(tmp_path, "core/system.py", L6_READ_ONLY_ENTRY, ["L6"])
        == []
    )


def test_l6_suppression_on_def_line(tmp_path):
    source = """
        class XMVRSystem:
            def _stash(self, view):
                self._views[view.view_id] = view

            def adopt(self, view):  # xmvrlint: disable=L6 -- test override
                self._stash(view)
    """
    assert _lint_snippet(tmp_path, "core/system.py", source, ["L6"]) == []


# ----------------------------------------------------------------------
# L7 — exception safety (mutate-then-raise windows)
# ----------------------------------------------------------------------
L7_RAISE_AFTER_MUTATE = """
    class XMVRSystem:
        def tag(self, view):
            self._views[view.view_id] = view
            if not view.ok:
                raise ValueError("bad view")
            self._invalidate_plans()
"""

L7_RAISING_CALLEE = """
    class XMVRSystem:
        def _persist(self, view):
            raise OSError("disk full")

        def register(self, view):
            self._views[view.view_id] = view
            self._persist(view)
            self._invalidate_plans()
"""

L7_INVALIDATE_FIRST = """
    class XMVRSystem:
        def tag(self, view):
            self._invalidate_plans()
            self._views[view.view_id] = view
            if not view.ok:
                raise ValueError("bad view")
"""

L7_HANDLER_INVALIDATES = """
    class XMVRSystem:
        def _persist(self, view):
            raise OSError("disk full")

        def register(self, view):
            self._views[view.view_id] = view
            try:
                self._persist(view)
            except Exception:
                self._invalidate_plans()
                raise
            self._invalidate_plans()
"""

L7_RAISE_BEFORE_MUTATE = """
    class XMVRSystem:
        def tag(self, view):
            if not view.ok:
                raise ValueError("bad view")
            self._views[view.view_id] = view
            self._invalidate_plans()
"""


def test_l7_fires_on_raise_between_mutation_and_invalidate(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/system.py", L7_RAISE_AFTER_MUTATE, ["L7"]
    )
    assert _rules_hit(violations) == {"L7"}
    assert "stale plan cache" in violations[0].message


def test_l7_fires_on_raising_callee_in_the_window(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/system.py", L7_RAISING_CALLEE, ["L7"]
    )
    assert _rules_hit(violations) == {"L7"}


def test_l7_accepts_invalidate_first(tmp_path):
    # Monotone invalidation: the cache refills only via answer(), so
    # dropping plans *before* mutating closes every window.
    assert (
        _lint_snippet(tmp_path, "core/system.py", L7_INVALIDATE_FIRST, ["L7"])
        == []
    )


def test_l7_accepts_handler_that_invalidates_before_reraising(tmp_path):
    assert (
        _lint_snippet(
            tmp_path, "core/system.py", L7_HANDLER_INVALIDATES, ["L7"]
        )
        == []
    )


def test_l7_accepts_guard_raise_before_any_mutation(tmp_path):
    assert (
        _lint_snippet(
            tmp_path, "core/system.py", L7_RAISE_BEFORE_MUTATE, ["L7"]
        )
        == []
    )


# ----------------------------------------------------------------------
# L8 — purity of cache-key inputs
# ----------------------------------------------------------------------
L8_CLOCK_KEY = """
    import time

    class XMVRSystem:
        def _stamp(self):
            return time.time()

        def answer(self, query):
            query_key = self._stamp()
            return self._plan_cache.get(query_key, "MVS")
"""

L8_MUTATING_PRODUCER = """
    class XMVRSystem:
        def _bump(self, query):
            self._views["last"] = query
            return str(query)

        def answer(self, query):
            key = self._bump(query)
            return self._plan_cache.get(key, "MVS")
"""

L8_PURE_PRODUCER = """
    class XMVRSystem:
        def _canon(self, query):
            return "/".join(sorted(query))

        def answer(self, query):
            key = self._canon(query)
            return self._plan_cache.get(key, "MVS")
"""

L8_READS_STATE_PRODUCER = """
    class XMVRSystem:
        def _labelled(self, query):
            return self._prefix + query

        def answer(self, query):
            key = self._labelled(query)
            return self._plan_cache.get(key, "MVS")
"""


def test_l8_fires_on_clock_derived_key(tmp_path):
    violations = _lint_snippet(tmp_path, "core/system.py", L8_CLOCK_KEY, ["L8"])
    assert _rules_hit(violations) == {"L8"}
    assert "_stamp" in violations[0].message


def test_l8_fires_on_mutating_key_producer(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/system.py", L8_MUTATING_PRODUCER, ["L8"]
    )
    assert _rules_hit(violations) == {"L8"}


def test_l8_accepts_pure_key_producer(tmp_path):
    assert (
        _lint_snippet(tmp_path, "core/system.py", L8_PURE_PRODUCER, ["L8"])
        == []
    )


def test_l8_accepts_reads_state_key_producer(tmp_path):
    # Reading live state is fine — only mutation, I/O and the clock
    # break key determinism.
    assert (
        _lint_snippet(
            tmp_path, "core/system.py", L8_READS_STATE_PRODUCER, ["L8"]
        )
        == []
    )


def test_l8_covers_memo_intern_sink(tmp_path):
    source = """
        import time

        class XMVRSystem:
            def _stamp(self):
                return time.time()

            def warm(self, pattern):
                key = self._stamp()
                return self._memo.intern(key, pattern)
    """
    violations = _lint_snippet(tmp_path, "core/system.py", source, ["L8"])
    assert _rules_hit(violations) == {"L8"}


def test_l8_covers_memo_evict_views_sink(tmp_path):
    # Carry-over eviction keys select which memo entries survive an
    # epoch — an impure producer must be flagged like any cache key.
    source = """
        import time

        class XMVRSystem:
            def _touched(self):
                return [str(time.time())]

            def refresh(self):
                gone = self._touched()
                return self._memo.evict_views(gone)
    """
    violations = _lint_snippet(tmp_path, "core/system.py", source, ["L8"])
    assert _rules_hit(violations) == {"L8"}
    assert "_touched" in violations[0].message


def test_l8_accepts_pure_evict_views_producer(tmp_path):
    source = """
        class XMVRSystem:
            def _touched(self, edits):
                return sorted(set(edits))

            def refresh(self, edits):
                gone = self._touched(edits)
                return self._memo.evict_views(gone)
    """
    assert _lint_snippet(tmp_path, "core/system.py", source, ["L8"]) == []


# ----------------------------------------------------------------------
# L9 — import layering
# ----------------------------------------------------------------------
def test_l9_fires_on_upward_import(tmp_path):
    violations = _lint_tree(
        tmp_path,
        {
            "xpath/helper.py": """
                from core.system import XMVRSystem

                def shortcut(q):
                    return XMVRSystem.answer_static(q)
            """,
            "core/system.py": """
                class XMVRSystem:
                    pass
            """,
        },
        ["L9"],
    )
    assert _rules_hit(violations) == {"L9"}
    assert violations[0].path.endswith("xpath/helper.py")


def test_l9_fires_on_sideways_import(tmp_path):
    violations = _lint_tree(
        tmp_path,
        {
            "analysis/tool.py": "import workload.gen\n",
            "workload/gen.py": "SEED = 7\n",
        },
        ["L9"],
    )
    assert _rules_hit(violations) == {"L9"}


def test_l9_accepts_downward_imports(tmp_path):
    assert (
        _lint_tree(
            tmp_path,
            {
                "core/system.py": """
                    from xpath.pattern import TreePattern
                    import storage.kv
                """,
                "xpath/pattern.py": "class TreePattern:\n    pass\n",
                "storage/kv.py": "KV = {}\n",
            },
            ["L9"],
        )
        == []
    )


def test_l9_exempts_shell_modules_and_external_imports(tmp_path):
    assert (
        _lint_tree(
            tmp_path,
            {
                # cli wires all layers together — exempt.
                "cli.py": "import core.system\nimport bench.run\n",
                "core/system.py": "import json\nimport collections\n",
                "bench/run.py": "X = 1\n",
            },
            ["L9"],
        )
        == []
    )


# ----------------------------------------------------------------------
# per-file fact cache
# ----------------------------------------------------------------------
def _write_tree(tmp_path: Path, count: int = 6) -> Path:
    root = tmp_path / "proj"
    (root / "core").mkdir(parents=True)
    for index in range(count):
        (root / "core" / f"mod{index}.py").write_text(
            "def helper(value: int) -> int:\n    return value + 1\n",
            encoding="utf-8",
        )
    return root


def test_cache_skips_recompute_on_warm_run(tmp_path, monkeypatch):
    root = _write_tree(tmp_path)
    cache = tmp_path / "cache"
    calls = []
    original = engine._compute_file_facts

    def counting(path, repo_root):
        calls.append(path)
        return original(path, repo_root)

    monkeypatch.setattr(engine, "_compute_file_facts", counting)
    cold = lint_paths([root], all_rules(), root=root, cache_dir=cache)
    assert len(calls) == 6
    calls.clear()
    warm = lint_paths([root], all_rules(), root=root, cache_dir=cache)
    assert calls == []  # every file served from the cache
    assert warm == cold


def test_cache_recomputes_only_edited_file(tmp_path, monkeypatch):
    root = _write_tree(tmp_path)
    cache = tmp_path / "cache"
    lint_paths([root], all_rules(), root=root, cache_dir=cache)

    calls = []
    original = engine._compute_file_facts

    def counting(path, repo_root):
        calls.append(Path(path).name)
        return original(path, repo_root)

    monkeypatch.setattr(engine, "_compute_file_facts", counting)
    target = root / "core" / "mod3.py"
    target.write_text("def helper(value):\n    return value\n", "utf-8")
    violations = lint_paths([root], all_rules(), root=root, cache_dir=cache)
    assert calls == ["mod3.py"]
    # ...and the edit's new violation (L5: missing annotations) surfaces.
    assert "L5" in _rules_hit(violations)


def test_cache_cold_vs_warm_timing(tmp_path):
    root = _write_tree(tmp_path, count=12)
    cache = tmp_path / "cache"
    start = time.perf_counter()
    lint_paths([root], all_rules(), root=root, cache_dir=cache)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    lint_paths([root], all_rules(), root=root, cache_dir=cache)
    warm = time.perf_counter() - start
    # The CI budget for a warm re-lint of all of src/ is 2 s; a dozen
    # trivial files must come in far under that.
    assert warm < 2.0, f"warm lint too slow: cold={cold:.3f}s warm={warm:.3f}s"


def test_cache_survives_corrupt_entries(tmp_path):
    root = _write_tree(tmp_path, count=2)
    cache = tmp_path / "cache"
    baseline = lint_paths([root], all_rules(), root=root, cache_dir=cache)
    for entry in cache.iterdir():
        entry.write_bytes(b"not a pickle")
    # Corrupt cache entries must be recomputed, not crash the lint.
    assert (
        lint_paths([root], all_rules(), root=root, cache_dir=cache)
        == baseline
    )


def test_cache_ignores_suppressed_rule_changes_via_content_hash(tmp_path):
    # A suppression edit changes the file content, hence the cache key;
    # the stale record must not leak the old verdict.
    root = tmp_path / "proj"
    (root / "core").mkdir(parents=True)
    target = root / "core" / "bad.py"
    target.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    cache = tmp_path / "cache"
    first = lint_paths([target], all_rules(["L2"]), root=root, cache_dir=cache)
    assert _rules_hit(first) == {"L2"}
    target.write_text(
        "def remark(p):\n"
        "    p.ret.axis = None  # xmvrlint: disable=L2 -- test\n",
        encoding="utf-8",
    )
    second = lint_paths(
        [target], all_rules(["L2"]), root=root, cache_dir=cache
    )
    assert second == []


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
def test_baseline_roundtrip(tmp_path):
    violations = _lint_snippet(
        tmp_path,
        "core/dirty.py",
        "def remark(p):\n    p.ret.axis = None\n    p.root.steps = ()\n",
        ["L2"],
    )
    assert len(violations) == 2
    baseline_file = tmp_path / "baseline.json"
    write_baseline(violations, baseline_file)
    counts = load_baseline(baseline_file)
    assert counts == baseline_counts(violations)
    assert apply_baseline(violations, counts) == []


def test_baseline_lets_new_violations_through(tmp_path):
    first = _lint_snippet(
        tmp_path, "core/dirty.py", "def remark(p):\n    p.ret.axis = None\n",
        ["L2"],
    )
    counts = baseline_counts(first)
    more = _lint_snippet(
        tmp_path,
        "core/dirty.py",
        "def remark(p):\n    p.ret.axis = None\n    p.root.steps = ()\n",
        ["L2"],
    )
    remaining = apply_baseline(more, counts)
    assert len(remaining) == 1  # one baselined away, the new one stays


def test_baseline_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"counts": {"x": "three"}}), encoding="utf-8")
    with pytest.raises(LintError):
        load_baseline(bad)
    bad.write_text("[]", encoding="utf-8")
    with pytest.raises(LintError):
        load_baseline(bad)


def test_cli_baseline_flow(tmp_path, capsys):
    dirty = tmp_path / "core" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    baseline_file = tmp_path / "baseline.json"
    assert (
        lint_main(
            [str(dirty), "--select", "L2",
             "--write-baseline", str(baseline_file)]
        )
        == EXIT_CLEAN
    )
    assert (
        lint_main(
            [str(dirty), "--select", "L2", "--baseline", str(baseline_file)]
        )
        == EXIT_CLEAN
    )
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n    p.root.steps = ()\n",
        encoding="utf-8",
    )
    assert (
        lint_main(
            [str(dirty), "--select", "L2", "--baseline", str(baseline_file)]
        )
        == EXIT_VIOLATIONS
    )
    capsys.readouterr()


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
def test_render_sarif_shape(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/dirty.py",
        "def remark(p):\n    p.ret.axis = None\n", ["L2"],
    )
    report = json.loads(render_sarif(violations, all_rules(["L2"])))
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "xmvrlint"
    assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == {"L2"}
    result = run["results"][0]
    assert result["ruleId"] == "L2"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2


def test_cli_sarif_output(tmp_path, capsys):
    dirty = tmp_path / "core" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    assert (
        lint_main([str(dirty), "--select", "L2", "--format", "sarif"])
        == EXIT_VIOLATIONS
    )
    report = json.loads(capsys.readouterr().out)
    assert report["runs"][0]["results"][0]["ruleId"] == "L2"


# ----------------------------------------------------------------------
# --explain and rule-range selection
# ----------------------------------------------------------------------
def test_explain_returns_design_entries():
    for rule_id, marker in [
        ("L1", "invalidation"),
        ("L6", "interprocedural"),
        ("L7", "exception"),
        ("L8", "purity"),
        ("L9", "layering"),
        ("L10", "lock-set"),
        ("L11", "acquisition"),
        ("L12", "pinning"),
        ("L13", "immutability"),
        ("L14", "blocking"),
        ("L15", "invalidat"),
        ("L16", "acyclic"),
        ("L17", "rebuild"),
        ("L18", "mutator"),
        ("L19", "unannotated"),
    ]:
        text = explain_rule(rule_id)
        assert text.startswith(f"**{rule_id} ")
        assert marker in text.lower()


def test_explain_unknown_rule_is_an_error():
    with pytest.raises(LintError):
        explain_rule("L99")


def test_cli_explain_exits_clean(capsys):
    assert lint_main(["--explain", "L7"]) == EXIT_CLEAN
    assert "stale" in capsys.readouterr().out.lower()


def test_rule_range_selection():
    assert [rule.rule_id for rule in all_rules(["L1-L3"])] == [
        "L1", "L2", "L3",
    ]
    # Selection order is preserved: ranges expand in place.
    assert [rule.rule_id for rule in all_rules(["L7-L9", "L2"])] == [
        "L7", "L8", "L9", "L2",
    ]
    with pytest.raises(LintError):
        all_rules(["L9-L7"])


def test_cli_rules_flag_accepts_ranges(tmp_path, capsys):
    dirty = tmp_path / "core" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "def remark(p):\n    p.ret.axis = None\n", encoding="utf-8"
    )
    assert lint_main([str(dirty), "--rules", "L1-L9"]) == EXIT_VIOLATIONS
    assert lint_main([str(dirty), "--rules", "L3-L4"]) == EXIT_CLEAN
    capsys.readouterr()


# ----------------------------------------------------------------------
# lintcli edge cases
# ----------------------------------------------------------------------
def test_multi_rule_disable_file(tmp_path):
    source = """
        # xmvrlint: disable-file=L2,L4
        import random

        def remark(pattern):
            pattern.ret.axis = None
            return random.random()
    """
    assert _lint_snippet(tmp_path, "core/x.py", source, ["L2", "L4"]) == []


def test_suppression_on_decorated_def_line(tmp_path):
    source = """
        def wrap(fn):
            return fn

        class XMVRSystem:
            @wrap
            def rebuild(self):  # xmvrlint: disable=L1 -- fresh caches
                self._views = {}
    """
    assert _lint_snippet(tmp_path, "core/x.py", source, ["L1"]) == []


def test_unparsable_file_in_clean_directory_is_exit_2(tmp_path, capsys):
    root = tmp_path / "core"
    root.mkdir()
    (root / "clean.py").write_text("X = 1\n", encoding="utf-8")
    (root / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    assert lint_main([str(root)]) == EXIT_ERROR
    capsys.readouterr()


def test_fix_on_clean_file_changes_nothing(tmp_path, capsys):
    target = tmp_path / "storage" / "ok.py"
    target.parent.mkdir(parents=True)
    source = "def reset(store: dict) -> None:\n    store.clear()\n"
    target.write_text(source, encoding="utf-8")
    assert lint_main([str(target), "--select", "L5", "--fix"]) == EXIT_CLEAN
    assert target.read_text(encoding="utf-8") == source


# ----------------------------------------------------------------------
# the repo itself is clean under the full rule set
# ----------------------------------------------------------------------
def test_repo_is_clean_under_whole_program_rules():
    # The full per-file + whole-program rule set (dataflow L6-L9,
    # concurrency L10-L14, derived-state L15-L19): the real tree must
    # stay clean with zero unjustified suppressions.
    src = Path(__file__).resolve().parent.parent / "src"
    violations = lint_paths(
        [src], all_rules(["L1-L19"]), root=src.parent
    )
    assert violations == [], engine.render_human(violations)
