"""Exception-safety regressions for the answering pipeline.

Each test seeds the failure xmvrlint L6/L7 flagged in the pre-fix
code: an operation that mutates answering state and then raises must
not leave behind a warm plan cache (or a half-registered view) derived
from the pre-mutation state.  All of these fail against the pre-fix
ordering (invalidate-last) and pass with invalidate-first plus the
explicit cleanup handlers.
"""

import pytest

from repro import MaterializedViewSystem, encode_tree, parse_xpath
from repro.delta import DocumentEditor
from repro.xmltree import XMLNode, build_tree


def _book_system() -> MaterializedViewSystem:
    doc = encode_tree(build_tree(
        ("b", ["t", ("s", ["t", "p"]), ("s", ["t", "p", ("f", ["i"])])])
    ))
    system = MaterializedViewSystem(doc)
    system.register_view("V1", "//s[t]/p")
    system.register_view("V2", "//s[f//i]/p")
    return system


def _warm(system: MaterializedViewSystem, query: str = "//s[t]/p") -> None:
    system.answer(query)
    assert len(system._plan_cache) > 0


class TestRegistrationFailure:
    def test_failed_persist_drops_cached_plans(self, monkeypatch):
        system = _book_system()
        _warm(system)

        def boom(view):
            raise OSError("disk full")

        monkeypatch.setattr(system, "_persist_definition", boom)
        with pytest.raises(OSError):
            system.register_view("V3", "//b/t")
        # The view pool mutated before the failure; serving the old
        # plans would answer against a pool the cache never saw.
        assert len(system._plan_cache) == 0

    def test_failed_persist_then_answer_is_correct(self, monkeypatch):
        system = _book_system()
        _warm(system)
        monkeypatch.setattr(
            system,
            "_persist_definition",
            lambda view: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            system.register_view("V3", "//b/t")
        monkeypatch.undo()
        outcome = system.answer("//s[t]/p")
        assert outcome.codes == system.direct_codes("//s[t]/p")


class TestInsertFailure:
    def test_failed_encode_drops_cached_plans_and_indexes(self, monkeypatch):
        system = _book_system()
        editor = DocumentEditor(system)
        _warm(system)
        system.answer_bn("//s[t]/p")  # builds the node index
        assert system._node_index is not None

        def boom(parent, subtree):
            raise RuntimeError("encode failed")

        monkeypatch.setattr(editor, "_encode_new_subtree", boom)
        first_s = system.document.tree.root.children[1]
        with pytest.raises(RuntimeError):
            editor.insert_subtree(first_s.dewey, XMLNode("p"))
        # The subtree is already attached to the tree: plans and
        # base-data indexes derived from the old document must be gone.
        assert len(system._plan_cache) == 0
        assert system._node_index is None
        assert system._path_index is None

    def test_failed_full_reencode_drops_cached_plans(self, monkeypatch):
        system = _book_system()
        editor = DocumentEditor(system)
        _warm(system)

        def boom():
            raise RuntimeError("reencode failed")

        monkeypatch.setattr(editor, "_full_reencode", boom)
        first_s = system.document.tree.root.children[1]
        with pytest.raises(RuntimeError):
            # "z" is schema-violating, forcing the full-reencode path.
            editor.insert_subtree(first_s.dewey, XMLNode("z"))
        assert len(system._plan_cache) == 0


class TestRefreshFailure:
    def test_failed_rematerialization_evicts_the_view(self, monkeypatch):
        system = _book_system()
        editor = DocumentEditor(system)
        _warm(system)
        original = system.fragments.materialize

        def boom(view_id, entries):
            if view_id == "V1":
                raise RuntimeError("store failed")
            return original(view_id, entries)

        monkeypatch.setattr(system.fragments, "materialize", boom)
        target = system.answer("//s[f//i]/p").codes[0]
        with pytest.raises(RuntimeError):
            editor.delete_subtree(target)
        # V1's fragments were dropped before the failure; leaving it in
        # the answerable pool would rewrite queries against nothing.
        assert "V1" not in [v.view_id for v in system._materialized]
        assert "V1" not in system.vfilter.filter(
            parse_xpath("//s[t]/p")
        ).candidates
        assert len(system._plan_cache) == 0

    def test_answers_stay_correct_after_failed_refresh(self, monkeypatch):
        system = _book_system()
        editor = DocumentEditor(system)
        _warm(system)
        original = system.fragments.materialize

        def boom(view_id, entries):
            if view_id == "V1":
                raise RuntimeError("store failed")
            return original(view_id, entries)

        monkeypatch.setattr(system.fragments, "materialize", boom)
        target = system.answer("//s[f//i]/p").codes[0]
        with pytest.raises(RuntimeError):
            editor.delete_subtree(target)
        monkeypatch.undo()
        # The surviving pool still answers correctly (or falls back).
        assert (
            system.direct_codes("//s[f//i]/p")
            == [n.dewey for n in system.document.tree.iter_nodes()
                if n.label == "p" and n.dewey is not None
                and any(c.label == "f" for c in n.parent.children)]
        )

    def test_capacity_evicted_view_leaves_the_pool(self, monkeypatch):
        system = _book_system()
        editor = DocumentEditor(system)
        _warm(system)
        monkeypatch.setattr(
            system.fragments,
            "materialize",
            lambda view_id, entries: False,  # every view outgrows the cap
        )
        first_s = system.document.tree.root.children[1]
        report = editor.insert_subtree(first_s.dewey, XMLNode("p"))
        for view_id in report.affected_views:
            assert view_id not in [v.view_id for v in system._materialized]
        assert len(system._plan_cache) == 0
