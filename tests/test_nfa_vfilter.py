"""Tests for the VFILTER NFA and Algorithm 1."""

import random

import pytest

from repro.core import AcceptEntry, PathNFA, VFilter, View
from repro.matching import has_homomorphism
from repro.storage import KVStore
from repro.xpath import normalize, parse_path, parse_xpath, str_tokens

from conftest import random_pattern


def _tokens(expression):
    return str_tokens(normalize(parse_path(expression).to_path_pattern()))


def _nfa_with(*expressions):
    nfa = PathNFA()
    for index, expression in enumerate(expressions):
        path = normalize(parse_path(expression).to_path_pattern())
        nfa.insert(path, AcceptEntry(f"v{index}", 0, path.length))
    return nfa


def _accepts(nfa, expression):
    return bool(nfa.read(_tokens(expression)))


class TestNFAFragmentSemantics:
    """Each case checks the NFA against path-pattern containment."""

    @pytest.mark.parametrize(
        "view_path,probe,expected",
        [
            # /l fragment
            ("/a/b", "/a/b", True),
            ("/a/b", "/a//b", False),
            ("/a/b", "/a/*", False),   # wildcard probe more general
            ("/a/b", "/a/c", False),
            # /* fragment
            ("/a/*", "/a/b", True),
            ("/a/*", "/a/*", True),
            # a trailing wildcard is gap-like: /a/* ≡ /a//* contains
            # every probe guaranteeing a descendant under a
            ("/a/*", "/a//b", True),
            # but an *interior* /-wildcard stays exact-depth
            ("/a/*/x", "/a//b/x", False),
            # //l fragment
            ("/a//b", "/a/b", True),
            ("/a//b", "/a//b", True),
            ("/a//b", "/a/x/b", True),
            ("/a//b", "/a//x//b", True),
            ("/a//b", "/a/x/y/b", True),
            ("/a//b", "/a//x", False),
            ("/a//b", "/a/*", False),
            # //* fragment
            ("/a//*", "/a/b", True),
            ("/a//*", "/a//b", True),
            ("/a//*", "/a/*", True),
            ("/a//*", "/a//*", True),
            # root axis
            ("//a", "/a", True),
            ("//a", "/x/a", True),
            ("/a", "//a", False),
            # prefix extension: view contains longer query paths
            ("//b", "//b/c/d", True),
            ("/a/b", "/a/b//c", True),
            ("/a/b", "/a//b/c", False),
            # no cross-contamination between / and // exits
            ("/a/b", "/x//a/b", False),
        ],
    )
    def test_acceptance(self, view_path, probe, expected):
        nfa = _nfa_with(view_path)
        assert _accepts(nfa, probe) is expected

    def test_mixed_axes_no_false_suffix_sharing(self):
        """/l/x and //l/y must not leak into each other (the trap fixed
        during construction: //l/x ⋢ /l/x)."""
        nfa = _nfa_with("/a/l/x", "/a//l/y")
        assert _accepts(nfa, "/a/l/x")
        assert _accepts(nfa, "/a//l/y")
        assert _accepts(nfa, "/a/l/y")      # /a/l/y ⊑ /a//l/y
        assert not _accepts(nfa, "/a//l/x")  # ⋢ /a/l/x

    def test_prefix_sharing_reduces_states(self):
        shared = _nfa_with("/a/b/c", "/a/b/d", "/a/b//e")
        separate = sum(
            _nfa_with(expr).state_count - 1
            for expr in ("/a/b/c", "/a/b/d", "/a/b//e")
        )
        assert shared.state_count - 1 < separate

    def test_reachable_states_example(self):
        nfa = _nfa_with("/s/p")
        states = nfa.reachable_states(("s", "p"))
        assert states & set(nfa.accepting_states())

    def test_stored_bytes_grows_with_content(self):
        small = _nfa_with("/a/b")
        large = _nfa_with("/a/b", "/c/d//e", "/f/*/g")
        assert large.stored_bytes() > small.stored_bytes()

    def test_transition_count_tracked(self):
        nfa = _nfa_with("/a//b")
        assert nfa.transition_count >= 4


class TestVFilterAlgorithm1:
    def _views(self):
        return [
            View.from_xpath("V1", "s[t]/p"),
            View.from_xpath("V2", "s[.//f]/p"),
            View.from_xpath("V3", "s//*/t"),
            View.from_xpath("V4", "s[p]/f"),
        ]

    def test_candidates_paper_style(self):
        vfilter = VFilter()
        vfilter.add_views(self._views())
        result = vfilter.filter(parse_xpath("s[f//i][t]/p"))
        assert result.candidates == ["V1", "V2", "V4"]

    def test_lists_sorted_by_length_descending(self):
        vfilter = VFilter()
        vfilter.add_views(
            [
                View.from_xpath("short", "//p"),
                View.from_xpath("long", "s/p"),
            ]
        )
        result = vfilter.filter(parse_xpath("s[t]/p"))
        path = next(p for p in result.query_paths if p.leaf_label() == "p")
        entries = result.lists[path]
        assert entries[0][0] == "long"
        assert entries[0][1] > entries[1][1]

    def test_lists_exclude_filtered_views(self):
        vfilter = VFilter()
        vfilter.add_views(
            [
                View.from_xpath("keep", "s/p"),
                # 'drop' has path //s/zzz never matched -> filtered; its
                # //s/p path must not appear in the lists.
                View.from_xpath("drop", "s[zzz]/p"),
            ]
        )
        result = vfilter.filter(parse_xpath("s[t]/p"))
        assert result.candidates == ["keep"]
        for entries in result.lists.values():
            assert all(view_id != "drop" for view_id, _ in entries)

    def test_view_path_not_double_counted(self):
        """A single view path matching two query paths must not make the
        view a candidate (NUM counts distinct view paths)."""
        vfilter = VFilter()
        vfilter.add_views([View.from_xpath("W", "a[b]/c")])  # D = {a/b, a/c}
        # both query paths (a/b twice) match only view path a/b
        result = vfilter.filter(parse_xpath("a[b]/b"))
        assert result.candidates == []

    def test_duplicate_view_id_rejected(self):
        vfilter = VFilter()
        vfilter.add_view(View.from_xpath("V", "//a"))
        with pytest.raises(ValueError):
            vfilter.add_view(View.from_xpath("V", "//b"))

    def test_normalization_eliminates_false_negatives(self):
        """Example 3.2/3.3: s/*//t ≡ s//*/t must be accepted."""
        vfilter = VFilter()
        vfilter.add_views([View.from_xpath("W", "//s//*/t")])
        assert vfilter.filter(parse_xpath("//s/*//t")).candidates == ["W"]
        vfilter2 = VFilter()
        vfilter2.add_views([View.from_xpath("W", "//s/*//t")])
        assert vfilter2.filter(parse_xpath("//s//*/t")).candidates == ["W"]

    @pytest.mark.parametrize("seed", range(12))
    def test_no_false_negatives_random(self, seed):
        """Soundness: every view with a homomorphism to the query
        survives filtering."""
        rng = random.Random(seed)
        views = [
            View(f"v{i}", random_pattern(rng, max_nodes=4)) for i in range(15)
        ]
        vfilter = VFilter()
        vfilter.add_views(views)
        for _ in range(6):
            query = random_pattern(rng, max_nodes=5)
            candidates = set(vfilter.filter(query).candidates)
            for view in views:
                if has_homomorphism(view.pattern, query):
                    assert view.view_id in candidates, (
                        view.to_xpath(), query.to_xpath()
                    )

    def test_save_to_kvstore(self):
        vfilter = VFilter()
        vfilter.add_views(self._views())
        store = KVStore()
        written = vfilter.save(store)
        assert written > 0
        assert written == store.stored_bytes
        assert len(store) == vfilter.nfa.state_count + vfilter.view_count

    def test_save_load_roundtrip(self):
        vfilter = VFilter()
        vfilter.add_views(self._views())
        store = KVStore()
        vfilter.save(store)
        loaded = VFilter.load(store)
        query = parse_xpath("s[f//i][t]/p")
        original = vfilter.filter(query)
        recovered = loaded.filter(query)
        assert recovered.candidates == original.candidates
        assert recovered.lists == original.lists
        assert loaded.view("V1").to_xpath() == vfilter.view("V1").to_xpath()

    def test_loaded_filter_accepts_new_views(self):
        vfilter = VFilter()
        vfilter.add_views(self._views())
        store = KVStore()
        vfilter.save(store)
        loaded = VFilter.load(store)
        loaded.add_view(View.from_xpath("extra", "//s//i"))
        result = loaded.filter(parse_xpath("//s/f/i"))
        assert "extra" in result.candidates

    def test_view_lookup(self):
        vfilter = VFilter()
        views = self._views()
        vfilter.add_views(views)
        assert vfilter.view("V1") is views[0]
        assert vfilter.view_count == 4
        assert vfilter.views() == views
