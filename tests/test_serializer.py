"""Dedicated serializer tests (escaping, pretty-printing, round trips)."""

import random

import pytest

from repro.xmltree import (
    XMLNode,
    XMLTree,
    build_tree,
    parse_xml,
    serialize,
    serialize_node,
)

from conftest import random_tree


class TestEscaping:
    def test_text_escapes(self):
        node = XMLNode("a", text="1 < 2 & 3 > 0")
        rendered = serialize_node(node)
        assert "&lt;" in rendered and "&amp;" in rendered and "&gt;" in rendered
        again = parse_xml(rendered)
        assert again.root.text == "1 < 2 & 3 > 0"

    def test_attribute_escapes(self):
        node = XMLNode("a", attributes={"v": 'say "hi" & <bye>'})
        rendered = serialize_node(node)
        assert "&quot;" in rendered
        again = parse_xml(rendered)
        assert again.root.attributes["v"] == 'say "hi" & <bye>'

    def test_unicode_passthrough(self):
        node = XMLNode("a", text="héllo ✓ 漢字")
        again = parse_xml(serialize_node(node))
        assert again.root.text == "héllo ✓ 漢字"


class TestShapes:
    def test_self_closing_leaf(self):
        assert serialize_node(XMLNode("a")) == "<a/>"

    def test_leaf_with_text(self):
        assert serialize_node(XMLNode("a", text="x")) == "<a>x</a>"

    def test_leaf_with_attrs(self):
        assert serialize_node(XMLNode("a", attributes={"k": "v"})) == '<a k="v"/>'

    def test_nested(self):
        tree = build_tree(("a", [("b", ["c"]), "d"]))
        assert serialize_node(tree.root) == "<a><b><c/></b><d/></a>"

    def test_document_declaration(self):
        tree = XMLTree(XMLNode("a"))
        assert serialize(tree).startswith('<?xml version="1.0"')


class TestPrettyPrinting:
    def test_indentation_levels(self):
        tree = build_tree(("a", [("b", ["c"])]))
        rendered = serialize_node(tree.root, indent=2)
        lines = rendered.splitlines()
        assert lines[0] == "<a>"
        assert lines[1] == "  <b>"
        assert lines[2] == "    <c/>"
        assert lines[3] == "  </b>"
        assert lines[4] == "</a>"

    def test_pretty_round_trips(self):
        tree = build_tree(("a", [("b", ["c", "d"]), ("e", [])]))
        tree.root.children[1].text = "words here"
        again = parse_xml(serialize(tree, indent=4))
        assert again.root.structurally_equal(tree.root)


class TestRoundTripProperty:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_trees_round_trip(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=50)
        # decorate with text/attributes
        for index, node in enumerate(tree.iter_nodes()):
            if index % 3 == 0:
                node.text = f"text {index} <&>"
            if index % 4 == 0:
                node.attributes["n"] = str(index)
        for indent in (None, 2):
            rendered = serialize(tree, indent=indent)
            again = parse_xml(rendered)
            assert again.root.structurally_equal(tree.root), indent

    def test_deep_tree_no_recursion_error(self):
        node = XMLNode("a")
        root = node
        for _ in range(4000):
            node = node.new_child("a")
        rendered = serialize_node(root)
        assert rendered.count("<a>") == 4000
        again = parse_xml(rendered)
        assert again.size() == 4001
