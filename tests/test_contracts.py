"""Runtime contract layer (repro.analysis.contracts).

Three angles:

* unit tests of the individual checks against hand-built good/bad
  state;
* a hypothesis property test: on generated documents, views and
  queries, no contract fires anywhere in the answering pipeline and
  answers still match ground truth — the contracts are *quiet* on a
  correct system;
* a mutation test: a system whose ``_invalidate_plans`` is a no-op
  (the exact bug lint rule L1 guards against) serves a stale cached
  plan, and the sampled plan-consistency contract catches it.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import random_pattern, random_tree
from repro.analysis import contracts
from repro.analysis.contracts import ContractViolation
from repro.delta.maintenance import DocumentEditor
from repro.core.selection import Selection
from repro.core.system import MaterializedViewSystem
from repro.core.vfilter import FilterResult
from repro.core.view import View
from repro.errors import ViewNotAnswerableError
from repro.xmltree.builder import encode_tree
from repro.xmltree.tree import XMLNode, build_tree
from repro.xpath.parser import parse_xpath

STRATEGIES = ("HV", "MV", "MN", "CB")


@pytest.fixture(autouse=True)
def _checks_on(monkeypatch):
    monkeypatch.setenv("XMVR_CHECK", "1")
    monkeypatch.setenv("XMVR_CHECK_SAMPLE", "1")


# ----------------------------------------------------------------------
# individual checks
# ----------------------------------------------------------------------
def test_enabled_reads_environment(monkeypatch):
    monkeypatch.setenv("XMVR_CHECK", "0")
    assert not contracts.enabled()
    monkeypatch.setenv("XMVR_CHECK", "1")
    assert contracts.enabled()


def test_sample_every_parses_and_clamps(monkeypatch):
    monkeypatch.setenv("XMVR_CHECK_SAMPLE", "3")
    assert contracts.sample_every() == 3
    monkeypatch.setenv("XMVR_CHECK_SAMPLE", "0")
    assert contracts.sample_every() == 1
    monkeypatch.setenv("XMVR_CHECK_SAMPLE", "nope")
    assert contracts.sample_every() == 8


def test_document_order_accepts_sorted_unique():
    contracts.check_document_order([(1,), (1, 2), (2,)], "t")
    contracts.check_document_order([], "t")


def test_document_order_rejects_duplicates_and_inversions():
    with pytest.raises(ContractViolation, match="document-ordered"):
        contracts.check_document_order([(1,), (1,)], "t")
    with pytest.raises(ContractViolation, match="document-ordered"):
        contracts.check_document_order([(2,), (1,)], "t")


def test_selection_covers_rejects_empty_selection():
    pattern = parse_xpath("//a/b")
    with pytest.raises(ContractViolation, match="does not cover"):
        contracts.check_selection_covers(Selection([], []), pattern, "t")


def test_selection_covers_accepts_self_view():
    pattern = parse_xpath("//a/b")
    view = View.from_xpath("v", "//a/b")
    contracts.check_selection_covers(Selection([view], []), pattern, "t")


def test_selection_covers_requires_delta_provider():
    # //a[b] and //a/b share the leaf obligation {b} plus Δ; a view
    # returning only the b-leaf of //a[b]'s sibling shape cannot
    # provide Δ for a query whose answer is the a node.
    pattern = parse_xpath("//a[b]")
    view = View.from_xpath("v", "//a/b")
    with pytest.raises(ContractViolation):
        contracts.check_selection_covers(Selection([view], []), pattern, "t")


def test_vfilter_sound_flags_dropped_usable_view():
    pattern = parse_xpath("//a/b")
    view = View.from_xpath("v", "//a/b")
    empty = FilterResult(candidates=[])
    with pytest.raises(ContractViolation, match="dropped view"):
        contracts.check_vfilter_sound(pattern, empty, [view], "t")
    # Listing the view as a candidate satisfies the lemma.
    contracts.check_vfilter_sound(
        pattern, FilterResult(candidates=["v"]), [view], "t"
    )


def test_vfilter_sound_allows_dropping_unusable_view():
    pattern = parse_xpath("//a/b")
    unrelated = View.from_xpath("v", "//x/y")
    contracts.check_vfilter_sound(
        pattern, FilterResult(candidates=[]), [unrelated], "t"
    )


# ----------------------------------------------------------------------
# property test: contracts are quiet on a correct system
# ----------------------------------------------------------------------
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_no_contract_fires_on_generated_workloads(seed):
    rng = random.Random(seed)
    tree = random_tree(rng, max_nodes=25, max_depth=5)
    document = encode_tree(tree)
    system = MaterializedViewSystem(document)
    for index in range(rng.randint(1, 6)):
        system.register_view(f"v{index}", random_pattern(rng, max_nodes=4))

    queries = [random_pattern(rng, max_nodes=4) for _ in range(4)]
    for pattern in queries:
        expected = system.direct_codes(pattern)
        for strategy in STRATEGIES:
            # Twice per strategy: the second answer exercises the warm
            # path, where XMVR_CHECK_SAMPLE=1 re-derives the plan.
            for _ in range(2):
                try:
                    outcome = system.answer(pattern, strategy)
                except ViewNotAnswerableError:
                    continue
                assert outcome.codes == expected


# ----------------------------------------------------------------------
# mutation test: broken invalidation is detected
# ----------------------------------------------------------------------
class _BrokenInvalidation(MaterializedViewSystem):
    """The bug lint rule L1 exists to prevent, injected deliberately."""

    def _invalidate_plans(  # xmvrlint: disable=L1 -- mutation under test
        self, affected=None
    ) -> tuple[int, int]:
        return 0, 0


def _small_system(cls):
    rng = random.Random(7)
    tree = random_tree(rng, max_nodes=20, max_depth=4)
    return cls(encode_tree(tree))


def _stale_plan_via_maintenance(cls):
    """Answer once (caching a plan), then insert a matching subtree
    through the editor.  With a broken ``_invalidate_plans`` the cached
    pre-insert plan survives the in-place document mutation."""
    doc = encode_tree(build_tree(("b", ["t", ("s", ["t", "p"])])))
    system = cls(doc)
    system.register_view("vp", "//s/p")
    first = system.answer("//s/p", "HV")
    editor = DocumentEditor(system)
    section = XMLNode("s")
    section.new_child("t")
    section.new_child("p")
    editor.insert_subtree(system.document.tree.root.dewey, section)
    return system, first


def test_noop_invalidation_caught_by_plan_consistency():
    # Registration cannot leave a stale plan any more — every published
    # epoch starts with a fresh plan cache — so the bug class L1 guards
    # against is in-place document maintenance forgetting to
    # invalidate.  Inject exactly that; the sampled warm-path
    # consistency check catches the pre-insert plan.
    system, _ = _stale_plan_via_maintenance(_BrokenInvalidation)
    with pytest.raises(ContractViolation, match="stale plan entry"):
        system.answer("//s/p", "HV")


def test_registration_is_structurally_invalidating():
    # The epoch design makes register_view immune to a broken
    # _invalidate_plans: the cached negative plan below dies with its
    # epoch, so the post-registration answer is correct even though the
    # invalidation hook is a no-op.
    system = _small_system(_BrokenInvalidation)
    with pytest.raises(ViewNotAnswerableError):
        system.answer("//a", "HV")
    system.register_view("va", "//a")
    outcome = system.answer("//a", "HV")
    assert outcome.codes == system.direct_codes("//a")


def test_healthy_system_not_flagged():
    system = _small_system(MaterializedViewSystem)
    query = "//a"
    with pytest.raises(ViewNotAnswerableError):
        system.answer(query, "HV")
    system.register_view("va", "//a")
    outcome = system.answer(query, "HV")
    assert outcome.codes == system.direct_codes(query)
    # Warm repeat passes the sampled consistency check.
    warm = system.answer(query, "HV")
    assert warm.plan_cache_hit and warm.codes == outcome.codes


def test_mutation_detection_requires_sampling(monkeypatch):
    # With checks disabled the stale plan is silently replayed — the
    # contract layer, not luck, is what catches the mutation above.
    monkeypatch.setenv("XMVR_CHECK", "0")
    system, first = _stale_plan_via_maintenance(_BrokenInvalidation)
    stale = system.answer("//s/p", "HV")
    assert stale.plan_cache_hit
    assert stale.codes == first.codes  # the pre-insert answer
    assert stale.codes != system.direct_codes("//s/p")
