"""Tests for tree/path pattern data structures."""

import random

import pytest

from repro.errors import PatternError
from repro.xpath import (
    Axis,
    PathPattern,
    Step,
    decompose,
    normalize,
    parse_xpath,
    str_text,
    str_tokens,
)
from repro.xpath.pattern import PatternNode, TreePattern

from conftest import random_pattern


class TestTreePattern:
    def test_answer_must_belong(self):
        root = PatternNode("a")
        stranger = PatternNode("b")
        with pytest.raises(PatternError):
            TreePattern(root, stranger)

    def test_size_leaves_depth(self):
        pattern = parse_xpath("/a[b/d][c]/e")
        assert pattern.size() == 5
        assert sorted(n.label for n in pattern.leaves()) == ["c", "d", "e"]
        assert pattern.depth() == 3

    def test_is_path(self):
        assert parse_xpath("/a/b//c").is_path()
        assert not parse_xpath("/a[b]/c").is_path()

    def test_feature_flags(self):
        assert parse_xpath("/a/*").has_wildcard()
        assert not parse_xpath("/a/b").has_wildcard()
        assert parse_xpath("/a//b").has_descendant_axis()
        assert not parse_xpath("/a/b").has_descendant_axis()

    def test_copy_is_deep_and_keeps_ret(self):
        pattern = parse_xpath("/a[b]/c")
        clone = pattern.copy()
        assert clone == pattern
        assert clone.ret is not pattern.ret
        assert clone.ret.label == "c"
        clone.root.new_child("z")
        assert clone != pattern

    def test_equality_is_unordered(self):
        assert parse_xpath("/a[b][c]/d") == parse_xpath("/a[c][b]/d")

    def test_equality_distinguishes_answer_node(self):
        first = parse_xpath("/a/b")
        second = parse_xpath("/a[b]")  # answer = a
        assert first != second

    def test_equality_distinguishes_axes(self):
        assert parse_xpath("/a/b") != parse_xpath("/a//b")
        assert parse_xpath("/a/b") != parse_xpath("//a/b")

    def test_hashable(self):
        patterns = {parse_xpath("/a/b"), parse_xpath("/a/b"), parse_xpath("/a//b")}
        assert len(patterns) == 2

    def test_subtree_at_reroots(self):
        pattern = parse_xpath("/a/b[c]/d")
        b = pattern.ret.parent
        sub = pattern.subtree_at(b)
        assert sub.root.label == "b"
        assert sub.root.axis is Axis.CHILD
        assert sub.ret is sub.root
        assert sorted(n.label for n in sub.iter_nodes()) == ["b", "c", "d"]

    def test_subtree_at_with_ret(self):
        pattern = parse_xpath("/a/b[c]/d")
        b = pattern.ret.parent
        sub = pattern.subtree_at(b, ret=pattern.ret)
        assert sub.ret.label == "d"

    def test_subtree_at_rejects_outside_ret(self):
        pattern = parse_xpath("/a/b[c]/d")
        b = pattern.ret.parent
        with pytest.raises(PatternError):
            pattern.subtree_at(b, ret=pattern.root)

    def test_to_xpath_marks_answer(self):
        pattern = parse_xpath("/a[b]")
        assert "{a}" in pattern.to_xpath(mark_answer=True)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_roundtrip_through_xpath(self, seed):
        rng = random.Random(seed)
        pattern = random_pattern(rng, max_nodes=6)
        # Skip patterns whose answer node is internal with children:
        # rendering keeps it the spine tail, so they still round-trip.
        reparsed = parse_xpath(pattern.to_xpath())
        assert reparsed == pattern


class TestPathPattern:
    def test_requires_steps(self):
        with pytest.raises(PatternError):
            PathPattern(())

    def test_sequence_protocol(self):
        path = PathPattern((
            Step(Axis.CHILD, "a"),
            Step(Axis.DESCENDANT, "b"),
        ))
        assert len(path) == 2
        assert path[1].label == "b"
        assert [step.label for step in path] == ["a", "b"]
        assert path.length == 2
        assert path.leaf_label() == "b"

    def test_to_xpath(self):
        path = PathPattern((
            Step(Axis.CHILD, "a"),
            Step(Axis.DESCENDANT, "b"),
            Step(Axis.CHILD, "*"),
        ))
        assert path.to_xpath() == "/a//b/*"

    def test_tree_conversion_roundtrip(self):
        pattern = parse_xpath("/a//b/c")
        path = pattern.to_path_pattern()
        assert path.to_tree_pattern() == pattern

    def test_tree_conversion_rejects_branches(self):
        with pytest.raises(PatternError):
            parse_xpath("/a[b]/c").to_path_pattern()

    def test_hash_and_equality(self):
        first = parse_xpath("/a/b").to_path_pattern()
        second = parse_xpath("/a/b").to_path_pattern()
        third = parse_xpath("/a//b").to_path_pattern()
        assert first == second and hash(first) == hash(second)
        assert first != third


class TestDecompose:
    def test_paper_example(self):
        """D(b[ //f//i ]/t) style decomposition from Section III-A."""
        query = parse_xpath("s[f//i][t]/p")
        paths = [p.to_xpath() for p in decompose(query)]
        assert paths == ["//s/f//i", "//s/t", "//s/p"]

    def test_single_path(self):
        query = parse_xpath("/a/b")
        assert [p.to_xpath() for p in decompose(query)] == ["/a/b"]

    def test_duplicates_removed(self):
        query = parse_xpath("/a[b][b]/c")
        paths = [p.to_xpath() for p in decompose(query)]
        assert paths == ["/a/b", "/a/c"]

    def test_cardinality_matches_leaves(self):
        query = parse_xpath("/a[b/c][d]/e[f]")
        assert len(decompose(query)) == len(query.leaves()) == 3


class TestNormalize:
    def test_paper_example_3_3(self):
        """s/*//t normalizes to s//*/t."""
        path = parse_xpath("/s/*//t").to_path_pattern()
        assert normalize(path).to_xpath() == "/s//*/t"

    def test_already_normalized_unchanged(self):
        path = parse_xpath("/s//*/t").to_path_pattern()
        assert normalize(path) == path

    def test_no_wildcards_untouched(self):
        path = parse_xpath("/a//b/c").to_path_pattern()
        assert normalize(path) == path

    def test_long_run_collapses_to_one_descendant(self):
        path = parse_xpath("/a/*//*/*//b").to_path_pattern()
        assert normalize(path).to_xpath() == "/a//*/*/*/b"

    def test_multiple_runs_normalized_independently(self):
        path = parse_xpath("/a/*//b/*//c").to_path_pattern()
        assert normalize(path).to_xpath() == "/a//*/b//*/c"

    def test_run_at_tail(self):
        path = parse_xpath("/a/*//*").to_path_pattern()
        assert normalize(path).to_xpath() == "/a//*/*"

    def test_run_at_head(self):
        path = parse_xpath("//*/*/a").to_path_pattern()
        assert normalize(path).to_xpath() == "//*/*/a"
        path2 = parse_xpath("/*//*/a").to_path_pattern()
        assert normalize(path2).to_xpath() == "//*/*/a"

    def test_child_only_run_untouched(self):
        path = parse_xpath("/a/*/*/b").to_path_pattern()
        assert normalize(path) == path

    def test_idempotent(self):
        for expr in ["/a/*//t", "/a//*/*//b", "//*//*", "/a/b"]:
            path = parse_xpath(expr).to_path_pattern()
            once = normalize(path)
            assert normalize(once) == once

    def test_normalization_preserves_equivalence(self):
        """N(P) ≡ P via the exact containment test."""
        from repro.matching import equivalent

        for expr in ["/a/*//t", "/s/*//t", "/a//*/*//b", "/a/*//b/*//c"]:
            path = parse_xpath(expr).to_path_pattern()
            assert equivalent(
                path.to_tree_pattern(), normalize(path).to_tree_pattern()
            )

    def test_equivalent_forms_share_normal_form(self):
        """Proposition 3.2 on a family of equivalent spellings."""
        spellings = ["/s/*//t", "/s//*/t", "/s/*//t"]
        normals = {
            normalize(parse_xpath(e).to_path_pattern()) for e in spellings
        }
        assert len(normals) == 1


class TestStrTransform:
    def test_paper_rules(self):
        """Omit '/', replace '//' with '#'."""
        path = parse_xpath("/b//s/p").to_path_pattern()
        assert str_tokens(path) == ("b", "#", "s", "p")
        assert str_text(path) == "b#sp"

    def test_leading_descendant(self):
        path = parse_xpath("//b/s").to_path_pattern()
        assert str_tokens(path) == ("#", "b", "s")

    def test_wildcards_kept(self):
        path = parse_xpath("/a/*//*").to_path_pattern()
        assert str_tokens(path) == ("a", "*", "#", "*")
