"""Concurrency rules L10-L14: lock-set races, lock-order cycles,
epoch pinning, snapshot immutability, and blocking-under-lock.

Every rule gets true-positive fixtures (seeded defects that must fire)
and false-positive fixtures (compliant code that must stay clean).
On top of the synthetic fixtures, a seeded-mutant battery copies the
real, annotated ``src/repro/core/system.py`` into a temp tree, appends
one violating method per rule, and asserts the rule catches exactly
that bug — proof the annotations and the analysis line up on the tree
they were written for.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import engine
from repro.analysis.engine import all_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SYSTEM_PY = REPO_ROOT / "src" / "repro" / "core" / "system.py"


def _lint_snippet(tmp_path: Path, relpath: str, source: str, select=None):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], all_rules(select), root=tmp_path)


def _rules_hit(violations):
    return {violation.rule for violation in violations}


# ----------------------------------------------------------------------
# L10 — lock-set consistency (guarded-by)
# ----------------------------------------------------------------------
L10_UNLOCKED_READ = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock
            self._count = 0

        def peek(self):
            return self._count
"""

L10_WRONG_LOCK_WRITE = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            self._other = threading.Lock()
            #: guarded-by: _lock
            self._count = 0

        def bump(self):
            with self._other:
                self._count = 5
"""

L10_LOCKED_ACCESS = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def peek(self):
            with self._lock:
                return self._count
"""

L10_HELPER_UNDER_LOCK = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock
            self._count = 0

        def _bump_locked(self):
            self._count += 1

        def bump(self):
            with self._lock:
                self._bump_locked()
"""

L10_HELPER_ESCAPES_LOCK = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock
            self._count = 0

        def _bump_locked(self):
            self._count += 1

        def bump(self):
            with self._lock:
                self._bump_locked()

        def sneak(self):
            self._bump_locked()
"""

L10_WRITES_MODE = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock (writes)
            self._hits = 0

        def peek(self):
            return self._hits

        def bump(self):
            self._hits += 1
"""


def test_l10_fires_on_unlocked_read(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/thing.py", L10_UNLOCKED_READ, ["L10"]
    )
    assert _rules_hit(violations) == {"L10"}
    assert "_lock" in violations[0].message


def test_l10_fires_on_write_under_wrong_lock(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/thing.py", L10_WRONG_LOCK_WRITE, ["L10"]
    )
    assert _rules_hit(violations) == {"L10"}
    assert "write" in violations[0].message


def test_l10_accepts_locked_access(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/thing.py", L10_LOCKED_ACCESS, ["L10"]
    ) == []


def test_l10_accepts_helper_called_only_under_lock(tmp_path):
    # Interprocedural: the helper never takes the lock itself, but the
    # entry-locks fixpoint proves every caller holds it.
    assert _lint_snippet(
        tmp_path, "core/thing.py", L10_HELPER_UNDER_LOCK, ["L10"]
    ) == []


def test_l10_fires_when_one_caller_escapes_the_lock(tmp_path):
    # One unlocked call site drains the intersection: the helper's
    # unguarded mutation is now reachable without the lock.
    violations = _lint_snippet(
        tmp_path, "core/thing.py", L10_HELPER_ESCAPES_LOCK, ["L10"]
    )
    assert _rules_hit(violations) == {"L10"}


def test_l10_writes_mode_allows_lock_free_reads(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/thing.py", L10_WRITES_MODE, ["L10"]
    )
    # The unlocked read is by design; only the unlocked write fires.
    assert len(violations) == 1
    assert "write" in violations[0].message


def test_l10_exempts_init_construction(tmp_path):
    # Writes in __init__ happen before the object is shared.
    assert _lint_snippet(
        tmp_path, "core/thing.py", L10_UNLOCKED_READ.replace(
            "def peek(self):\n            return self._count",
            "def noop(self):\n            pass",
        ), ["L10"]
    ) == []


# ----------------------------------------------------------------------
# L11 — lock-order acquisition graph
# ----------------------------------------------------------------------
L11_CYCLE = """
    import threading

    class Thing:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forwards(self):
            with self._a:
                with self._b:
                    pass

        def backwards(self):
            with self._b:
                with self._a:
                    pass
"""

L11_CONSISTENT = """
    import threading

    class Thing:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def one(self):
            with self._a:
                with self._b:
                    pass

        def two(self):
            with self._a:
                with self._b:
                    pass
"""

L11_REACQUIRE = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()

        def outer(self):
            with self._lock:
                with self._lock:
                    pass
"""

L11_RLOCK_REACQUIRE = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.RLock()

        def outer(self):
            with self._lock:
                with self._lock:
                    pass
"""

L11_CYCLE_THROUGH_CALL = """
    import threading

    class Thing:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def _take_a(self):
            with self._a:
                pass

        def forwards(self):
            with self._a:
                with self._b:
                    pass

        def backwards(self):
            with self._b:
                self._take_a()
"""


def test_l11_fires_on_lock_order_cycle(tmp_path):
    violations = _lint_snippet(tmp_path, "core/t.py", L11_CYCLE, ["L11"])
    assert _rules_hit(violations) == {"L11"}
    assert "cycle" in violations[0].message


def test_l11_accepts_consistent_order(tmp_path):
    assert _lint_snippet(tmp_path, "core/t.py", L11_CONSISTENT, ["L11"]) == []


def test_l11_fires_on_nonreentrant_reacquire(tmp_path):
    violations = _lint_snippet(tmp_path, "core/t.py", L11_REACQUIRE, ["L11"])
    assert _rules_hit(violations) == {"L11"}


def test_l11_accepts_rlock_reacquire(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L11_RLOCK_REACQUIRE, ["L11"]
    ) == []


def test_l11_sees_cycle_through_a_call(tmp_path):
    # backwards() holds _b and calls a helper that acquires _a: the
    # transitive-acquires fixpoint must close the b -> a edge.
    violations = _lint_snippet(
        tmp_path, "core/t.py", L11_CYCLE_THROUGH_CALL, ["L11"]
    )
    assert _rules_hit(violations) == {"L11"}


# ----------------------------------------------------------------------
# L12 — epoch pinning (read-once snapshots)
# ----------------------------------------------------------------------
L12_DOUBLE_READ = """
    import threading

    class System:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock (writes, pin-once)
            self._epoch = object()

        def torn(self):
            first = self._epoch
            second = self._epoch
            return first is second
"""

L12_LOOP_READ = """
    import threading

    class System:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock (writes, pin-once)
            self._epoch = object()

        def spin(self):
            for _ in range(3):
                print(self._epoch)
"""

L12_SINGLE_PIN = """
    import threading

    class System:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock (writes, pin-once)
            self._epoch = object()

        def pinned(self):
            epoch = self._epoch
            for _ in range(3):
                print(epoch)
            return epoch
"""

L12_READS_UNDER_LOCK = """
    import threading

    class System:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock (writes, pin-once)
            self._epoch = object()

        def swap(self):
            with self._lock:
                if self._epoch is not None:
                    print(self._epoch)
"""


def test_l12_fires_on_double_read(tmp_path):
    violations = _lint_snippet(tmp_path, "core/s.py", L12_DOUBLE_READ, ["L12"])
    assert _rules_hit(violations) == {"L12"}
    assert "2 times" in violations[0].message


def test_l12_fires_on_read_inside_loop(tmp_path):
    violations = _lint_snippet(tmp_path, "core/s.py", L12_LOOP_READ, ["L12"])
    assert _rules_hit(violations) == {"L12"}
    assert "loop" in violations[0].message


def test_l12_accepts_single_pin(tmp_path):
    assert _lint_snippet(tmp_path, "core/s.py", L12_SINGLE_PIN, ["L12"]) == []


def test_l12_accepts_repeated_reads_under_the_lock(tmp_path):
    # Under the writer lock the field cannot move between reads.
    assert _lint_snippet(
        tmp_path, "core/s.py", L12_READS_UNDER_LOCK, ["L12"]
    ) == []


# ----------------------------------------------------------------------
# L13 — deep immutability of published snapshots
# ----------------------------------------------------------------------
L13_UNFROZEN = """
    from dataclasses import dataclass

    @dataclass
    class RegistryEpoch:
        views: dict
"""

L13_FROZEN = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class RegistryEpoch:
        views: dict
"""

L13_SUBSCRIPT_MUTATION = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class RegistryEpoch:
        views: dict

    class System:
        def __init__(self):
            self._epoch = RegistryEpoch(views={})

        def poison(self):
            self._epoch.views["x"] = None
"""

L13_MUTATOR_THROUGH_LOCAL = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class RegistryEpoch:
        views: dict

    class System:
        def __init__(self):
            self._epoch = RegistryEpoch(views={})

        def poison(self):
            epoch = self._epoch
            epoch.views.clear()
"""

L13_FRESH_SWAP = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class RegistryEpoch:
        views: dict

    class System:
        def __init__(self):
            self._epoch = RegistryEpoch(views={})

        def publish(self, views):
            self._epoch = RegistryEpoch(views=dict(views))
"""


def test_l13_requires_frozen_registry_epoch(tmp_path):
    violations = _lint_snippet(tmp_path, "core/s.py", L13_UNFROZEN, ["L13"])
    assert _rules_hit(violations) == {"L13"}
    assert "frozen" in violations[0].message


def test_l13_accepts_frozen_registry_epoch(tmp_path):
    assert _lint_snippet(tmp_path, "core/s.py", L13_FROZEN, ["L13"]) == []


def test_l13_fires_on_subscript_mutation(tmp_path):
    violations = _lint_snippet(
        tmp_path, "core/s.py", L13_SUBSCRIPT_MUTATION, ["L13"]
    )
    assert _rules_hit(violations) == {"L13"}


def test_l13_fires_on_mutator_through_pinned_local(tmp_path):
    # Pinning the epoch into a local must not launder the mutation.
    violations = _lint_snippet(
        tmp_path, "core/s.py", L13_MUTATOR_THROUGH_LOCAL, ["L13"]
    )
    assert _rules_hit(violations) == {"L13"}


def test_l13_accepts_fresh_epoch_swap(tmp_path):
    # Publish-by-replacement is the sanctioned update protocol.
    assert _lint_snippet(tmp_path, "core/s.py", L13_FRESH_SWAP, ["L13"]) == []


# ----------------------------------------------------------------------
# L14 — no blocking under a core lock
# ----------------------------------------------------------------------
L14_BLOCKING_IO = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()

        def slow(self):
            with self._lock:
                return open("/tmp/x").read()
"""

L14_SLEEP = """
    import threading
    import time

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()

        def nap(self):
            with self._lock:
                time.sleep(1)
"""

L14_BLOCKING_ALLOWED = """
    import threading

    class Store:
        def __init__(self):
            #: lock: blocking-allowed
            self._lock = threading.RLock()

        def load(self):
            with self._lock:
                return open("/tmp/x").read()
"""

L14_OUTSIDE_LOCK = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()

        def fine(self):
            payload = open("/tmp/x").read()
            with self._lock:
                return len(payload)
"""

L14_CONDITION_WAIT = """
    import threading

    class Gate:
        def __init__(self):
            self._gate = threading.Condition()

        def wait_idle(self):
            with self._gate:
                self._gate.wait()
"""


def test_l14_fires_on_file_io_under_lock(tmp_path):
    violations = _lint_snippet(tmp_path, "core/t.py", L14_BLOCKING_IO, ["L14"])
    assert _rules_hit(violations) == {"L14"}
    assert "block" in violations[0].message


def test_l14_fires_on_sleep_under_lock(tmp_path):
    violations = _lint_snippet(tmp_path, "core/t.py", L14_SLEEP, ["L14"])
    assert _rules_hit(violations) == {"L14"}


def test_l14_accepts_blocking_allowed_annotation(tmp_path):
    assert _lint_snippet(
        tmp_path, "storage/s.py", L14_BLOCKING_ALLOWED, ["L14"]
    ) == []


def test_l14_accepts_io_outside_the_lock(tmp_path):
    assert _lint_snippet(
        tmp_path, "core/t.py", L14_OUTSIDE_LOCK, ["L14"]
    ) == []


def test_l14_accepts_condition_wait_on_held_condition(tmp_path):
    # cond.wait() releases the lock it holds — the gate pattern.
    assert _lint_snippet(
        tmp_path, "service/g.py", L14_CONDITION_WAIT, ["L14"]
    ) == []


# ----------------------------------------------------------------------
# seeded mutants against the real annotated system.py
# ----------------------------------------------------------------------
SYSTEM_MUTANTS = {
    "L10": """\
    def _mutant(self):
        return self._plan_stats_base
""",
    "L11": """\
    def _mutant(self):
        with self._stats_lock:
            with self._mutate_lock:
                pass
""",
    "L12": """\
    def _mutant(self):
        first = self._epoch
        second = self._epoch
        return first is second
""",
    "L13": """\
    def _mutant(self):
        self._epoch.views["x"] = None
""",
    "L14": """\
    def _mutant(self):
        with self._stats_lock:
            open("/tmp/x").read()
""",
}


def _lint_system_copy(tmp_path: Path, extra: str = ""):
    source = SYSTEM_PY.read_text(encoding="utf-8")
    target = tmp_path / "core" / "system.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source + "\n" + extra, encoding="utf-8")
    original_lines = source.count("\n")
    violations = lint_paths([tmp_path], all_rules(["L10-L14"]), root=tmp_path)
    return [v for v in violations if v.line > original_lines]


def test_unmutated_system_copy_is_clean(tmp_path):
    source = SYSTEM_PY.read_text(encoding="utf-8")
    target = tmp_path / "core" / "system.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    violations = lint_paths([tmp_path], all_rules(["L10-L14"]), root=tmp_path)
    assert violations == [], engine.render_human(violations)


@pytest.mark.parametrize("rule_id", sorted(SYSTEM_MUTANTS))
def test_seeded_mutant_is_caught(tmp_path, rule_id):
    seeded = _lint_system_copy(tmp_path, SYSTEM_MUTANTS[rule_id])
    assert rule_id in _rules_hit(seeded), (
        f"{rule_id} missed its seeded mutant"
    )


# ----------------------------------------------------------------------
# suppression pragmas require a justification for L10-L14
# ----------------------------------------------------------------------
SUPPRESS_TEMPLATE = """
    import threading

    class Thing:
        def __init__(self):
            self._lock = threading.Lock()
            #: guarded-by: _lock
            self._count = 0

        def peek(self):
            return self._count  {pragma}
"""


def test_bare_pragma_does_not_suppress_concurrency_rules(tmp_path):
    violations = _lint_snippet(
        tmp_path,
        "core/t.py",
        SUPPRESS_TEMPLATE.format(pragma="# xmvrlint: disable=L10"),
        ["L10"],
    )
    assert _rules_hit(violations) == {"L10"}


def test_justified_pragma_suppresses(tmp_path):
    assert _lint_snippet(
        tmp_path,
        "core/t.py",
        SUPPRESS_TEMPLATE.format(
            pragma="# xmvrlint: disable=L10 -- monotonic stat, torn reads ok"
        ),
        ["L10"],
    ) == []


def test_bare_pragma_still_suppresses_per_file_rules(tmp_path):
    # The justification requirement is scoped to L10-L14; the per-file
    # rules keep their existing pragma contract.
    source = """
        class XMVRSystem:
            def rebuild(self):  # xmvrlint: disable=L1
                self._views = {}
    """
    assert _lint_snippet(tmp_path, "core/x.py", source, ["L1"]) == []


def test_disable_file_pragma_still_works_for_concurrency_rules(tmp_path):
    source = """
        # xmvrlint: disable-file=L10
        import threading

        class Thing:
            def __init__(self):
                self._lock = threading.Lock()
                #: guarded-by: _lock
                self._count = 0

            def peek(self):
                return self._count
    """
    assert _lint_snippet(tmp_path, "core/t.py", source, ["L10"]) == []
