"""Linearizability of the concurrent serving path (repro.service).

The central claim of the epoch design: under a mixed concurrent
workload of answers and registrations, **every** answer is
byte-identical to what a serial system would produce at the registry
state named by the answer's ``epoch_seq``.  Epoch sequence numbers
advance by exactly one per committed registration, and the final
epoch's view dict preserves commit order, so the linearized history
can be replayed exactly after the fact.

Runs with runtime contracts on (``XMVR_CHECK=1`` via conftest), so the
sampled plan-consistency check audits warm hits *during* the storm.
"""

from __future__ import annotations

import random
import threading

from repro.delta.maintenance import DocumentEditor
from repro.core.system import MaterializedViewSystem
from repro.service import SnapshotEngine
from repro.workload.xmark import generate_xmark
from repro.xmltree.builder import encode_tree
from repro.xmltree.tree import XMLNode

INITIAL_VIEWS = {
    "name": "//item/name",
    "person": "//person/name",
    "paid": "//item[payment]/description",
}

#: Registered concurrently by the writer fraction of the workload.
DYNAMIC_EXPRESSIONS = [
    "//item/description",
    "//item/payment",
    "//person",
    "//item[name]/payment",
    "//site//name",
]

QUERIES = list(INITIAL_VIEWS.values())
STRATEGIES = ("HV", "HV", "HV", "MV")  # mostly the default strategy


def _build_system() -> MaterializedViewSystem:
    document = encode_tree(generate_xmark(scale=0.05, seed=11))
    system = MaterializedViewSystem(document)
    for view_id, expression in INITIAL_VIEWS.items():
        system.register_view(view_id, expression)
    return system


def test_concurrent_mixed_workload_linearizes():
    system = _build_system()
    engine = SnapshotEngine(system)
    expressions: dict[str, str] = dict(INITIAL_VIEWS)
    expressions_lock = threading.Lock()
    observations: list[tuple[str, str, int, list]] = []
    failures: list[BaseException] = []
    merge_lock = threading.Lock()
    threads = 8
    ops_per_thread = 40

    def worker(index: int) -> None:
        rng = random.Random(1000 + index)
        local: list[tuple[str, str, int, list]] = []
        try:
            for op in range(ops_per_thread):
                if rng.random() < 0.05:  # 5% writers
                    view_id = f"w{index}_{op}"
                    expression = rng.choice(DYNAMIC_EXPRESSIONS)
                    with expressions_lock:
                        expressions[view_id] = expression
                    engine.register_view(view_id, expression)
                else:
                    query = rng.choice(QUERIES)
                    strategy = rng.choice(STRATEGIES)
                    outcome = engine.answer(query, strategy)
                    local.append(
                        (query, strategy, outcome.epoch_seq,
                         list(outcome.codes))
                    )
        except BaseException as error:  # pragma: no cover - failure path
            with merge_lock:
                failures.append(error)
        with merge_lock:
            observations.extend(local)

    pool = [
        threading.Thread(target=worker, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    assert not failures, failures
    assert observations

    # Commit order: epoch seq k <=> the first k entries of the final
    # views dict (insertion-ordered) were registered.
    final_epoch = system.current_epoch()
    commit_order = list(final_epoch.views)
    assert final_epoch.seq == len(commit_order)

    # Serial replay: one fresh system per distinct epoch observed.
    replayed: dict[int, MaterializedViewSystem] = {}
    for _, _, seq, _ in observations:
        if seq in replayed:
            continue
        serial = MaterializedViewSystem(system.document)
        for view_id in commit_order[:seq]:
            serial.register_view(view_id, expressions[view_id])
        replayed[seq] = serial

    for query, strategy, seq, codes in observations:
        expected = replayed[seq].answer(query, strategy).codes
        assert codes == expected, (
            f"{query} ({strategy}) at epoch {seq}: concurrent answer "
            f"diverges from serial replay"
        )


def test_registration_never_blocks_readers():
    """A reader holding a pinned epoch mid-answer sees registrations
    land around it without ever observing a torn registry."""
    system = _build_system()
    engine = SnapshotEngine(system)
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            while not stop.is_set():
                outcome = engine.answer("//item/name", "HV")
                assert outcome.codes
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    pool = [threading.Thread(target=reader) for _ in range(4)]
    for thread in pool:
        thread.start()
    for index in range(20):
        engine.register_view(f"r{index}", "//item/description")
    stop.set()
    for thread in pool:
        thread.join()
    assert not errors, errors
    assert system.view_count == len(INITIAL_VIEWS) + 20


def test_maintenance_gets_exclusive_access():
    """``maintain`` drains in-flight readers, runs alone, and answers
    issued afterwards observe the document change."""
    system = _build_system()
    engine = SnapshotEngine(system)
    before = engine.answer("//person/name", "HV")
    in_maintenance = threading.Event()
    overlap: list[str] = []

    def edit(target: MaterializedViewSystem) -> None:
        in_maintenance.set()
        assert engine._active == 0  # every shared participant drained
        editor = DocumentEditor(target)
        person = XMLNode("person")
        person.new_child("name")
        site = target.document.tree.root
        editor.insert_subtree(site.dewey, person)
        overlap.append("done")

    maintainer = threading.Thread(target=lambda: engine.maintain(edit))
    maintainer.start()
    in_maintenance.wait(timeout=5.0)
    maintainer.join(timeout=10.0)
    assert overlap == ["done"]

    after = engine.answer("//person/name", "HV")
    assert len(after.codes) == len(before.codes) + 1
    assert after.codes == system.direct_codes("//person/name")


def test_stats_snapshot_is_deep_and_race_free():
    """stats() under concurrent registration: no dict-changed-size
    errors, and the returned snapshot is detached from live state."""
    system = _build_system()
    engine = SnapshotEngine(system)
    errors: list[BaseException] = []
    stop = threading.Event()

    def poller() -> None:
        try:
            while not stop.is_set():
                snapshot = engine.stats()
                # Mutating the snapshot must not corrupt the system.
                snapshot["views"]["registered"] = -1  # type: ignore[index]
                snapshot["plan_cache"]["hits"] = -1  # type: ignore[index]
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    pool = [threading.Thread(target=poller) for _ in range(3)]
    for thread in pool:
        thread.start()
    for index in range(25):
        engine.register_view(f"s{index}", "//item/name")
        engine.answer("//item/name", "HV")
    stop.set()
    for thread in pool:
        thread.join()
    assert not errors, errors
    stats = engine.stats()
    assert stats["views"]["registered"] == len(INITIAL_VIEWS) + 25
    assert stats["epoch"] == len(INITIAL_VIEWS) + 25
