#!/usr/bin/env python3
"""Answering auction-site queries from a view pool (XMark workload).

The scenario the paper's introduction motivates: a site materializes a
pool of views for its hot query templates; ad-hoc queries are answered
from combinations of those views instead of the base data.  This
example builds an XMark-like document, materializes a mixed view pool,
then answers dashboard-style queries, showing which strategy picked
which views and comparing against the BN/BF base-data baselines.

Run:  python examples/auction_site_views.py
"""

import time

from repro import MaterializedViewSystem
from repro.workload import generate_xmark_document

VIEW_POOL = {
    # auction views
    "auct_incr": "//open_auction[initial]/bidder/increase",
    "auct_anno_seller": "//open_auction[seller]/annotation",
    "auct_anno_qty": "//open_auction[quantity]/annotation",
    "auct_anno_interval": "//open_auction[interval/start]/annotation",
    "auct_current": "//open_auction/current",
    # item views
    "item_desc_loc": "//item[location]/description",
    "item_desc_qty": "//item[quantity]/description",
    "item_mail": "//item/mailbox/mail",
    # people views
    "person_name_city": "//person[address/city]/name",
    "person_name_age": "//person[profile/age]/name",
    "person_watches": "//person[watches]/name",
    # closed auctions
    "closed_price": "//closed_auction[buyer]/price",
}

DASHBOARD_QUERIES = [
    # one view suffices (equivalent definition)
    "//open_auction[initial]/bidder/increase",
    # two views join on the shared item
    "//item[location][quantity]/description",
    # two person views join on the shared person
    "//person[address/city][profile/age]/name",
    # three auction views join on the shared open_auction
    "//open_auction[seller][quantity][interval/start]/annotation",
    # compensating query below the view's answer node
    "//open_auction[seller]/annotation/description",
]


def main() -> None:
    print("generating XMark-like document...")
    document = generate_xmark_document(scale=2.0, seed=11)
    print(f"  {document.tree.size()} element nodes")

    system = MaterializedViewSystem(document)
    for view_id, expression in VIEW_POOL.items():
        fitted = system.register_view(view_id, expression)
        status = "" if fitted else "  (over the 128 KiB cap — excluded)"
        print(f"  view {view_id:<20} {expression}{status}")

    print(f"\n{len(DASHBOARD_QUERIES)} dashboard queries:")
    for expression in DASHBOARD_QUERIES:
        truth = system.direct_codes(expression)
        print(f"\n  Q: {expression}   ({len(truth)} answers)")

        outcome = system.try_answer(expression, "HV")
        if outcome is None:
            print("     not answerable from the pool")
            continue
        assert outcome.codes == truth
        print(f"     HV: views {outcome.view_ids} "
              f"in {outcome.total_seconds * 1e3:6.2f} ms "
              f"(lookup {outcome.lookup_seconds * 1e3:.2f} ms)")

        for name, runner in (("BN", system.answer_bn), ("BF", system.answer_bf)):
            started = time.perf_counter()
            baseline = runner(expression)
            elapsed = time.perf_counter() - started
            assert baseline.codes == truth
            print(f"     {name}: base data scan in {elapsed * 1e3:6.2f} ms")


if __name__ == "__main__":
    main()
