#!/usr/bin/env python3
"""View advisor: diagnose WHY a query is not answerable, and fix it.

Uses the library's answerability machinery interactively: when a query
cannot be answered from the current views, the
:class:`~repro.errors.ViewNotAnswerableError` carries the uncovered
obligations (query leaves / Δ), from which the advisor proposes a
minimal additional view, registers it, and retries — the workflow a
DBA tool would build on top of this library.

Run:  python examples/view_advisor.py
"""

from repro import MaterializedViewSystem, ViewNotAnswerableError, parse_xpath
from repro.core.leaf_cover import DELTA
from repro.workload import generate_xmark_document


def propose_view(query_expression: str, uncovered) -> str:
    """Propose a view covering the uncovered obligations.

    Strategy: if Δ is uncovered, materialize the query's own answer
    path; otherwise cover the first uncovered leaf with the
    root-to-leaf path that reaches it, re-anchored at the query answer's
    parent so the new view joins with the existing ones.
    """
    query = parse_xpath(query_expression)
    labels = {str(obligation) for obligation in uncovered}
    if DELTA in labels:
        # Materialize the whole query — always sufficient.
        return query_expression
    # Cover one leaf: the path from the root to it, answering at the
    # query's answer node so the view also provides the join anchor.
    target = next(o for o in uncovered)
    for leaf in query.leaves():
        if str(target) == leaf.label:
            spine = leaf.root_path()
            steps = "".join(f"{n.axis.value}{n.label}" for n in spine[1:])
            anchor = spine[0]
            answer_steps = "".join(
                f"{n.axis.value}{n.label}"
                for n in query.ret.root_path()[1:]
            )
            return (
                f"{anchor.axis.value}{anchor.label}"
                f"[{steps.lstrip('/') if not steps.startswith('//') else '.' + steps}]"
                f"{answer_steps}"
            )
    return query_expression


def main() -> None:
    document = generate_xmark_document(scale=1.0, seed=3)
    system = MaterializedViewSystem(document)
    # A deliberately thin starting pool.
    system.register_view("base1", "//open_auction[seller]/annotation")
    system.register_view("base2", "//person/name")

    wanted = [
        "//open_auction[seller]/annotation",            # answerable already
        "//open_auction[seller][quantity]/annotation",  # needs one more view
        "//person[profile/age]/name",                   # needs one more view
    ]

    for expression in wanted:
        print(f"\nquery: {expression}")
        for attempt in range(1, 4):
            try:
                outcome = system.answer(expression, "HV")
            except ViewNotAnswerableError as error:
                missing = sorted(str(o) for o in error.uncovered) or ["Δ"]
                proposal = propose_view(expression, error.uncovered)
                view_id = f"advised{len(system.materialized_views())}"
                print(f"  attempt {attempt}: uncovered {missing}; "
                      f"advising view {proposal!r}")
                system.register_view(view_id, proposal)
                continue
            assert outcome.codes == system.direct_codes(expression)
            print(f"  answered with {outcome.view_ids} "
                  f"({len(outcome.codes)} answers) ✓")
            break
        else:  # pragma: no cover - advisor failed to converge
            raise SystemExit("advisor did not converge")


if __name__ == "__main__":
    main()
