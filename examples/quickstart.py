#!/usr/bin/env python3
"""Quickstart: answer an XPath query from materialized views.

Builds a small document, materializes two views, and answers the
paper's running example query ``s[f//i][t]/p`` without ever touching
the base data during rewriting — then cross-checks against direct
evaluation.

Run:  python examples/quickstart.py
"""

from repro import MaterializedViewSystem, encode_tree, parse_xml

BOOK_XML = """
<b>
  <t/> <a/> <a/>
  <s>
    <t/> <p/> <f><i/></f>
  </s>
  <s>
    <t/> <p/> <p/>
    <s> <t/> <p/> <f><i/></f> </s>
    <s> <t/> <p/> </s>
  </s>
</b>
"""


def main() -> None:
    # 1. Parse and Dewey-encode the document.
    document = encode_tree(parse_xml(BOOK_XML))
    print(f"document: {document.tree.size()} nodes, "
          f"alphabet {sorted(document.tree.labels())}")

    # 2. Materialize views (the paper's V1 and V4).
    system = MaterializedViewSystem(document)
    system.register_view("V1", "s[t]/p")   # sections with a title: paragraphs
    system.register_view("V4", "s[p]/f")   # sections with a paragraph: figures

    # 3. Answer a query that needs BOTH views.
    query = "s[f//i][t]/p"
    outcome = system.answer(query)          # heuristic HV strategy
    print(f"query {query!r}")
    print(f"  selected views : {outcome.view_ids}")
    print(f"  answers        : {['.'.join(map(str, c)) for c in outcome.codes]}")
    print(f"  lookup time    : {outcome.lookup_seconds * 1e3:.2f} ms")

    # 4. The rewriting is equivalent: same answers as direct evaluation.
    assert outcome.codes == system.direct_codes(query)
    print("  verified equal to direct evaluation ✓")

    # 5. Answers come with the fragment subtrees — usable without the
    #    base document.
    first = outcome.rewrite_result.answers[outcome.codes[0]]
    print(f"  first answer subtree root: <{first.label}> "
          f"with {len(first.children)} children")


if __name__ == "__main__":
    main()
