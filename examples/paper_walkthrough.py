#!/usr/bin/env python3
"""The paper's running example, reproduced step by step.

Walks through Sections II-V on the Figure 2 book document:

1. extended Dewey encoding + FST label-path derivation (Example 2.1),
2. Table I/II — view decomposition into path patterns,
3. VFILTER construction and Example 3.4 filtering,
4. Example 4.3 — leaf covers and heuristic selection,
5. Example 5.1 — refinement, the encoding join and extraction.

Run:  python examples/paper_walkthrough.py
"""

from repro import (
    MaterializedViewSystem,
    DocumentSchema,
    encode_tree,
    leaf_cover_labels,
    parse_xpath,
)
from repro.core import VFilter, View
from repro.xmltree import XMLNode, XMLTree, format_code
from repro.xpath import str_text

TABLE_I = {
    "V1": "s[t]/p",
    "V2": "s[.//f]/p",
    "V3": "s//*/t",
    "V4": "s[p]/f",
}
QUERY = "s[f//i][t]/p"


def build_figure_2() -> XMLTree:
    """book.xml with the labels b,t,a,s,p,f,i of Figure 2."""
    b = XMLNode("b")
    b.new_child("t")
    b.new_child("a")
    b.new_child("a")
    s1 = b.new_child("s")
    s1.new_child("t")
    s1.new_child("p")
    s1.new_child("f").new_child("i")
    s2 = b.new_child("s")
    s2.new_child("t")
    s2.new_child("p")
    s2.new_child("p")
    s3 = s2.new_child("s")
    s3.new_child("t")
    s3.new_child("p")
    s3.new_child("f").new_child("i")
    return XMLTree(b)


def main() -> None:
    schema = DocumentSchema("b", {
        "b": ["t", "a", "s"],
        "s": ["t", "p", "s", "f"],
        "t": [], "a": [], "p": [], "f": ["i"], "i": [],
    })
    document = encode_tree(build_figure_2(), schema)

    print("== Section II: extended Dewey codes + FST ==")
    for node in document.tree.iter_nodes():
        path = "/".join(document.fst.decode(node.dewey))
        print(f"  {format_code(node.dewey):<12} {node.label}   ({path})")
    print("  FST transitions:", document.fst.transitions())

    print("\n== Section III: D(V) and VFILTER (Tables I & II) ==")
    views = {vid: View.from_xpath(vid, expr) for vid, expr in TABLE_I.items()}
    vfilter = VFilter()
    for view in views.values():
        vfilter.add_view(view)
        paths = ", ".join(
            f"{p.to_xpath()} (STR={str_text(p)})" for p in view.paths
        )
        print(f"  {view.view_id}: {view.to_xpath():<14} D = {{{paths}}}")
    print(f"  automaton: {vfilter.nfa.state_count} states, "
          f"{vfilter.nfa.transition_count} transitions")

    query = parse_xpath(QUERY)
    result = vfilter.filter(query)
    print(f"\n  filtering Qe = {QUERY}  ->  candidates {result.candidates}")
    for path, entries in result.lists.items():
        print(f"    LIST({path.to_xpath()}) = {entries}")

    print("\n== Section IV: leaf covers (Example 4.3) ==")
    for vid in ("V1", "V4"):
        labels = sorted(leaf_cover_labels(views[vid], query))
        print(f"  LC({vid}, Qe) = {labels}")

    print("\n== Section V: rewriting (Example 5.1) ==")
    system = MaterializedViewSystem(document)
    for vid, expr in TABLE_I.items():
        fitted = system.register_view(vid, expr)
        print(f"  materialized {vid}: {system.fragments.fragment_count(vid)} "
              f"fragments, {system.fragments.fragment_bytes(vid)} bytes"
              f"{'' if fitted else '  (CAPPED)'}")
    outcome = system.answer(QUERY, "HV")
    print(f"  HV selects {outcome.view_ids}; "
          f"extraction from {outcome.rewrite_result.extraction_view}")
    print(f"  answers: {[format_code(c) for c in outcome.codes]}")
    assert outcome.codes == system.direct_codes(QUERY)
    print("  equals direct evaluation ✓")


if __name__ == "__main__":
    main()
